//! Host-side error handling for the experiment layer.
//!
//! [`mira_noc::error::NocError`] covers what goes wrong *inside* a
//! simulation; [`HostError`] covers what goes wrong *around* one — file
//! IO, flag and file parsing, checkpoint handling, and batches whose
//! points failed. The idiom mirrors `NocError`: a typed,
//! `#[non_exhaustive]` enum whose `Display` names the exact file, flag
//! or point involved, so binaries can exit non-zero with an actionable
//! message instead of panicking through an `unwrap()`.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Result alias for host-side experiment plumbing.
pub type HostResult<T> = Result<T, HostError>;

/// Errors produced by the experiment harness around simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HostError {
    /// A filesystem operation failed.
    Io {
        /// What was being done (e.g. `"write trace"`).
        action: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The OS error text.
        source: String,
    },
    /// A file or value did not parse.
    Parse {
        /// What was being parsed (a file path or a value description).
        what: String,
        /// Why it failed.
        detail: String,
    },
    /// A command-line flag was malformed or missing its value.
    Flag {
        /// The flag, as typed (e.g. `"--point-timeout"`).
        flag: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// A checkpoint file could not be written or replayed.
    Checkpoint {
        /// The checkpoint file involved.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// A runner batch finished with failed points (each rendered by
    /// [`PointFailure::to_string`](crate::experiments::runner::PointFailure)).
    Batch {
        /// The exhibit whose batch failed.
        exhibit: String,
        /// Points submitted.
        points: usize,
        /// One rendered line per failed point.
        failures: Vec<String>,
    },
}

impl HostError {
    /// Wraps an [`std::io::Error`] with the action and path it broke on.
    pub fn io(action: &'static str, path: impl Into<PathBuf>, source: &std::io::Error) -> Self {
        HostError::Io { action, path: path.into(), source: source.to_string() }
    }

    /// Prints the error to stderr and exits non-zero — the binaries'
    /// clean replacement for panicking on a host-side failure.
    pub fn exit(&self) -> ! {
        eprintln!("error: {self}");
        std::process::exit(1);
    }
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Io { action, path, source } => {
                write!(f, "cannot {action} {}: {source}", path.display())
            }
            HostError::Parse { what, detail } => write!(f, "cannot parse {what}: {detail}"),
            HostError::Flag { flag, detail } => write!(f, "invalid {flag}: {detail}"),
            HostError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {}: {detail}", path.display())
            }
            HostError::Batch { exhibit, points, failures } => {
                write!(f, "{exhibit}: {} of {points} points failed", failures.len())?;
                for line in failures {
                    write!(f, "\n  {line}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for HostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file_and_flag() {
        let e = HostError::Io {
            action: "write trace",
            path: PathBuf::from("out/trace.json"),
            source: "No space left on device (os error 28)".into(),
        };
        let s = e.to_string();
        assert!(s.contains("out/trace.json") && s.contains("No space left"), "{s}");

        let e =
            HostError::Flag { flag: "--point-timeout", detail: "needs seconds, got \"x\"".into() };
        assert!(e.to_string().contains("--point-timeout"), "{e}");
    }

    #[test]
    fn batch_error_itemizes_failures() {
        let e = HostError::Batch {
            exhibit: "fig11a".into(),
            points: 5,
            failures: vec!["point 2 `ur 3DM @ 0.15` (seed 9) panicked: boom".into()],
        };
        let s = e.to_string();
        assert!(s.contains("1 of 5 points failed"), "{s}");
        assert!(s.contains("ur 3DM @ 0.15"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HostError>();
    }
}
