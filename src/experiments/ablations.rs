//! Ablation studies beyond the paper's headline exhibits.
//!
//! DESIGN.md calls out three design choices worth isolating:
//!
//! * **router pipeline depth** — the paper's conservative 4-stage router
//!   vs the speculative 3-stage and look-ahead 2-stage organisations it
//!   surveys (Fig. 8(b)/(c)), on the 3DM substrate;
//! * **express-channel span** — Dally's express-cube parameter, fixed at
//!   2 in the paper's 6×6 3DM-E;
//! * **VC count / buffer depth** — the paper fixes V=2, k=4 (§3.2.4) for
//!   frequency and power; how much performance is on the table?

use mira_noc::config::{PipelineConfig, PipelineDepth};
use mira_noc::sim::SimConfig;
use mira_noc::topology::{ExpressMesh2D, Mesh2D};
use mira_noc::traffic::UniformRandom;

use crate::arch::Arch;
use crate::experiments::common::{run_custom, EXPERIMENT_SEED};
use crate::experiments::runner::{Runner, SimPoint};
use crate::report::BarFigure;

/// Pipeline-depth ablation on the 3DM substrate: average UR latency for
/// the six (depth × LT) organisations at one injection rate.
///
/// All ablation points pin [`EXPERIMENT_SEED`] so every configuration
/// sees the identical packet stream — the comparison isolates the
/// design parameter, and the batch fans out on the runner.
pub fn ablate_pipeline(rate: f64, sim: SimConfig) -> BarFigure {
    let depths = [
        ("4-stage", PipelineDepth::FourStage),
        ("3-stage spec", PipelineDepth::ThreeStageSpeculative),
        ("2-stage lookahead", PipelineDepth::TwoStageLookahead),
    ];
    let mut points = Vec::new();
    for (name, depth) in depths {
        for combined in [false, true] {
            points.push(SimPoint::new(
                format!("{name} combined={combined}"),
                EXPERIMENT_SEED,
                move |s| {
                    let base = if combined {
                        PipelineConfig::combined_st_lt()
                    } else {
                        PipelineConfig::separate_lt()
                    };
                    let mut cfg = Arch::ThreeDM.network_config(false);
                    cfg.router.pipeline = base.with_depth(depth);
                    let w = UniformRandom::new(rate, 5, s);
                    run_custom(Arch::ThreeDM, Arch::ThreeDM.topology(), cfg, Box::new(w), sim)
                },
            ));
        }
    }
    let batch = Runner::from_env().run(points);
    let latencies: Vec<f64> = batch.outcomes.iter().map(|o| o.result.report.avg_latency).collect();
    let groups = depths
        .iter()
        .enumerate()
        .map(|(di, (name, _))| (name.to_string(), latencies[di * 2..di * 2 + 2].to_vec()))
        .collect();
    BarFigure {
        id: "abl-pipeline".into(),
        title: "Router pipeline-depth ablation (3DM substrate, UR)".into(),
        group_label: "organisation".into(),
        bar_labels: vec!["separate LT".into(), "ST+LT combined".into()],
        groups,
        unit: "cycles".into(),
    }
}

/// Express-span ablation: UR latency and average hop count for spans 2–4
/// on the 6×6 multi-layer mesh (span "1" = the plain 3DM mesh).
pub fn ablate_express_span(rate: f64, sim: SimConfig) -> BarFigure {
    // Span 1 is the plain mesh on the 3DM substrate; spans 2-4 are
    // express meshes priced as 3DM-E. Hop counts are closed-form, the
    // latencies come from one parallel batch.
    let mut labels = vec!["span 1 (mesh)".to_string()];
    let mut hops =
        vec![mira_noc::topology::average_min_hops(&Mesh2D::with_pitch(6, 6, Mesh2D::PITCH_3DM_MM))];
    let mut points = vec![SimPoint::new("span 1 (mesh)", EXPERIMENT_SEED, move |s| {
        let topo = Box::new(Mesh2D::with_pitch(6, 6, Mesh2D::PITCH_3DM_MM));
        let cfg = Arch::ThreeDM.network_config(false);
        run_custom(Arch::ThreeDM, topo, cfg, Box::new(UniformRandom::new(rate, 5, s)), sim)
    })];
    for span in 2..=4usize {
        labels.push(format!("span {span}"));
        hops.push(mira_noc::topology::average_min_hops(&ExpressMesh2D::with_params(
            6,
            6,
            Mesh2D::PITCH_3DM_MM,
            span,
        )));
        points.push(SimPoint::new(format!("span {span}"), EXPERIMENT_SEED, move |s| {
            let topo = Box::new(ExpressMesh2D::with_params(6, 6, Mesh2D::PITCH_3DM_MM, span));
            let cfg = Arch::ThreeDME.network_config(false);
            run_custom(Arch::ThreeDME, topo, cfg, Box::new(UniformRandom::new(rate, 5, s)), sim)
        }));
    }
    let batch = Runner::from_env().run(points);
    let groups = batch
        .outcomes
        .iter()
        .zip(labels.iter().zip(&hops))
        .map(|(o, (label, &h))| (label.clone(), vec![o.result.report.avg_latency, h]))
        .collect();
    BarFigure {
        id: "abl-express-span".into(),
        title: "Express-channel span ablation (6x6, UR)".into(),
        group_label: "span".into(),
        bar_labels: vec!["latency (cy)".into(), "avg min hops".into()],
        groups,
        unit: "cycles / hops".into(),
    }
}

/// VC/buffer sizing ablation on the 3DM router (the paper's V=2, k=4
/// operating point in context).
///
/// Note the deliberate design consequence this exposes: VC assignment is
/// by *traffic class* (paper §3.2.4 — one VC for control, one for data),
/// so under single-class uniform-random traffic the extra VCs sit idle
/// and latency depends on buffer depth only; V=2 buys protocol-class
/// separation (and deadlock isolation), not raw throughput. Utilisation
/// halves as the provisioned capacity doubles.
pub fn ablate_buffers(rate: f64, sim: SimConfig) -> BarFigure {
    let vcs_grid = [1usize, 2, 4];
    let depth_grid = [2usize, 4, 8];
    let mut points = Vec::new();
    for &vcs in &vcs_grid {
        for &depth in &depth_grid {
            points.push(SimPoint::new(format!("V={vcs} k={depth}"), EXPERIMENT_SEED, move |s| {
                let mut cfg = Arch::ThreeDM.network_config(false);
                cfg.router.vcs_per_port = vcs;
                cfg.router.buffer_depth = depth;
                let w = UniformRandom::new(rate, 5, s);
                run_custom(Arch::ThreeDM, Arch::ThreeDM.topology(), cfg, Box::new(w), sim)
            }));
        }
    }
    let batch = Runner::from_env().run(points);

    let topo = Arch::ThreeDM.topology();
    let (nodes, radix) = (topo.num_nodes(), topo.radix());
    let mut outcomes = batch.outcomes.iter();
    let mut groups = Vec::new();
    for &vcs in &vcs_grid {
        let mut values = Vec::new();
        for &depth in &depth_grid {
            let report = &outcomes.next().expect("one outcome per grid cell").result.report;
            let capacity = (nodes * radix * vcs * depth) as f64;
            let util = report.counters.mean_buffer_occupancy_flits() / capacity;
            values.push(if report.saturated { f64::NAN } else { report.avg_latency });
            values.push(util * 100.0);
        }
        groups.push((format!("V={vcs}"), values));
    }
    BarFigure {
        id: "abl-buffers".into(),
        title: "VC count / buffer depth ablation (3DM, UR)".into(),
        group_label: "VCs".into(),
        bar_labels: vec![
            "k=2 lat".into(),
            "k=2 util%".into(),
            "k=4 lat".into(),
            "k=4 util%".into(),
            "k=8 lat".into(),
            "k=8 util%".into(),
        ],
        groups,
        unit: "cycles / % buffer utilisation (NaN = saturated)".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn pipeline_ablation_orders_depths() {
        let fig = ablate_pipeline(0.05, quick_sim_config());
        let v = |g: &str, b: &str| fig.value(g, b).unwrap();
        // Shallower is faster, for both LT organisations.
        for lt in ["separate LT", "ST+LT combined"] {
            assert!(v("4-stage", lt) > v("3-stage spec", lt), "{lt}");
            assert!(v("3-stage spec", lt) > v("2-stage lookahead", lt), "{lt}");
        }
        // Combining helps at every depth.
        for depth in ["4-stage", "3-stage spec", "2-stage lookahead"] {
            assert!(v(depth, "separate LT") > v(depth, "ST+LT combined"), "{depth}");
        }
    }

    #[test]
    fn express_span_tradeoff() {
        let fig = ablate_express_span(0.05, quick_sim_config());
        let hops = |g: &str| fig.value(g, "avg min hops").unwrap();
        // On a 6×6 mesh the optimum span is exactly the paper's 2: the
        // closed-form hop counts are 70/18, 44/18, 46/18, 52/18 per
        // dimension-pair for spans 1..4 — larger spans overshoot short
        // distances and pay d mod s regular hops.
        assert!(hops("span 2") < hops("span 1 (mesh)"));
        assert!(hops("span 2") < hops("span 3"), "span 2 is the 6x6 optimum");
        assert!(hops("span 3") < hops("span 4"));
        assert!(hops("span 4") < hops("span 1 (mesh)"));
        // Latency: span 2 clearly beats the plain mesh at low load.
        let lat = |g: &str| fig.value(g, "latency (cy)").unwrap();
        assert!(lat("span 2") < lat("span 1 (mesh)"));
    }

    #[test]
    fn buffer_ablation_shows_paper_point_is_reasonable() {
        let fig = ablate_buffers(0.10, quick_sim_config());
        let v24 = fig.value("V=2", "k=4 lat").unwrap();
        assert!(v24.is_finite(), "the paper's operating point must not saturate");
        // More buffering at the same VC count never hurts latency much
        // below saturation.
        let v28 = fig.value("V=2", "k=8 lat").unwrap();
        assert!(v28 <= v24 * 1.1);
        // Deeper buffers run at lower relative utilisation.
        let u24 = fig.value("V=2", "k=4 util%").unwrap();
        let u28 = fig.value("V=2", "k=8 util%").unwrap();
        assert!(u24 > 0.0 && u24 < 100.0);
        assert!(u28 < u24, "doubling depth must lower relative occupancy");
    }
}

/// Routing-algorithm ablation (extension): deterministic X-Y vs the
/// turn-model adaptive routers on adversarial traffic (transpose and
/// hotspot), on the 3DM substrate.
pub fn ablate_routing(rate: f64, sim: SimConfig) -> BarFigure {
    use mira_noc::adaptive::{AdaptiveMesh2D, TurnModel};
    use mira_traffic::synthetic::{Pattern, PermutationTraffic};

    let routers: Vec<(String, Option<TurnModel>)> = std::iter::once(("x-y".to_string(), None))
        .chain(TurnModel::ALL.iter().map(|m| (m.name().to_string(), Some(*m))))
        .collect();

    let patterns: Vec<(&str, Pattern)> = vec![
        ("transpose", Pattern::Transpose { side: 6 }),
        (
            "hotspot",
            Pattern::Hotspot {
                hotspots: vec![mira_noc::ids::NodeId(14), mira_noc::ids::NodeId(21)],
                fraction: 0.3,
            },
        ),
    ];

    let mut points = Vec::new();
    for (rname, model) in &routers {
        for (pname, pattern) in &patterns {
            let model = *model;
            let pattern = pattern.clone();
            points.push(SimPoint::new(format!("{rname} on {pname}"), EXPERIMENT_SEED, move |s| {
                let mesh = Mesh2D::with_pitch(6, 6, Mesh2D::PITCH_3DM_MM);
                let topo: Box<dyn mira_noc::topology::Topology> = match model {
                    None => Box::new(mesh),
                    Some(m) => Box::new(AdaptiveMesh2D::new(mesh, m)),
                };
                let cfg = Arch::ThreeDM.network_config(false);
                let workload = PermutationTraffic::new(pattern.clone(), rate, 5, s);
                run_custom(Arch::ThreeDM, topo, cfg, Box::new(workload), sim)
            }));
        }
    }
    let batch = Runner::from_env().run(points);
    let mut outcomes = batch.outcomes.iter();
    let groups = routers
        .iter()
        .map(|(rname, _)| {
            let values = patterns
                .iter()
                .map(|_| {
                    let report = &outcomes.next().expect("outcome per cell").result.report;
                    if report.saturated {
                        f64::NAN
                    } else {
                        report.avg_latency
                    }
                })
                .collect();
            (rname.clone(), values)
        })
        .collect();
    BarFigure {
        id: "abl-routing".into(),
        title: "Routing-algorithm ablation on adversarial traffic (3DM mesh)".into(),
        group_label: "router".into(),
        bar_labels: patterns.iter().map(|(n, _)| n.to_string()).collect(),
        groups,
        unit: "cycles (NaN = saturated)".into(),
    }
}

#[cfg(test)]
mod routing_ablation_tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn adaptive_routers_deliver_adversarial_traffic() {
        let fig = ablate_routing(0.10, quick_sim_config());
        for (router, values) in &fig.groups {
            for v in values {
                assert!(v.is_finite(), "{router} saturated at 10%: {values:?}");
                assert!(*v > 5.0, "{router}: implausible latency {v}");
            }
        }
    }

    #[test]
    fn adaptivity_helps_on_transpose() {
        // Transpose concentrates XY traffic on the diagonal; a turn-model
        // adaptive router spreads it and must not be significantly worse.
        let fig = ablate_routing(0.20, quick_sim_config());
        let xy = fig.value("x-y", "transpose").unwrap();
        let best_adaptive = mira_noc::adaptive::TurnModel::ALL
            .iter()
            .map(|m| fig.value(m.name(), "transpose").unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(best_adaptive < xy * 1.05, "best adaptive {best_adaptive:.1} vs x-y {xy:.1}");
    }
}
