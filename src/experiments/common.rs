//! Shared experiment plumbing: running one architecture against one
//! workload and pricing the result.

use mira_noc::sim::{SimConfig, SimReport, Simulator};
use mira_noc::traffic::{PayloadProfile, UniformRandom, Workload};

use crate::arch::Arch;
use crate::experiments::runner::{derive_seed, RunSummary, Runner, SimPoint};

/// The seed used by every experiment (results are deterministic).
pub const EXPERIMENT_SEED: u64 = 20080621; // ISCA 2008 week

/// Result of one (architecture, workload) run.
///
/// `Serialize`/`Deserialize` exist so the runner can persist completed
/// points to sweep checkpoints and replay them bit-identically on
/// `--resume` (the vendored serde's float path round-trips every finite
/// `f64` exactly via shortest-display).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Which architecture ran.
    pub arch: Arch,
    /// The simulator's report.
    pub report: SimReport,
    /// Average network power over the measurement window, W.
    pub avg_power_w: f64,
    /// Power–delay product (power × mean latency).
    pub pdp: f64,
    /// Peak live flits in the run's arena (host-side watermark; not
    /// part of [`SimReport`], which is pinned bit-for-bit by the golden
    /// suites).
    pub arena_peak_flits: u64,
    /// Peak single-router buffer occupancy, flits.
    pub buffer_peak_flits: u64,
}

/// Runs one architecture against a workload.
pub fn run_arch(
    arch: Arch,
    layer_shutdown: bool,
    workload: Box<dyn Workload>,
    sim_cfg: SimConfig,
) -> RunResult {
    run_custom(arch, arch.topology(), arch.network_config(layer_shutdown), workload, sim_cfg)
}

/// Runs an arbitrary (topology, network-config) point, pricing it with
/// `arch`'s power model — the hook the ablations use to vary one design
/// parameter on an architecture's substrate.
pub fn run_custom(
    arch: Arch,
    topo: Box<dyn mira_noc::topology::Topology>,
    net_cfg: mira_noc::config::NetworkConfig,
    workload: Box<dyn Workload>,
    sim_cfg: SimConfig,
) -> RunResult {
    let mut sim = Simulator::new(topo, net_cfg, sim_cfg);
    let report = sim.run(workload);
    let pricing = arch.network_power();
    let avg_power_w = pricing.average_power_w(&report.counters);
    let pdp = pricing.power_delay_product(&report.counters, report.avg_latency);
    let wm = sim.network().watermarks();
    RunResult {
        arch,
        report,
        avg_power_w,
        pdp,
        arena_peak_flits: wm.arena_live_peak as u64,
        buffer_peak_flits: wm.router_buffer_peak as u64,
    }
}

/// The default measurement windows for the full experiments.
pub fn default_sim_config() -> SimConfig {
    SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        drain_cycles: 30_000,
        ..SimConfig::default()
    }
}

/// A fast configuration for tests and micro-benches.
pub fn quick_sim_config() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        drain_cycles: 6_000,
        ..SimConfig::default()
    }
}

/// One sample of a uniform-random sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Architecture.
    pub arch: Arch,
    /// Offered load, flits/node/cycle.
    pub rate: f64,
    /// The run.
    pub result: RunResult,
}

/// Builds the uniform-random sweep as runner points: one point per
/// `(rate, arch)` pair, in rate-major order.
///
/// Seeds are derived per *rate* (`derive_seed(EXPERIMENT_SEED, rate
/// index)`) and shared by all architectures at that rate, so
/// cross-architecture comparisons stay paired — 2DB and 3DM-NC see the
/// *same* packet stream, which `tests/paper_claims.rs` relies on.
pub fn sweep_ur_points(rates: &[f64], short_fraction: f64, sim_cfg: SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let seed = derive_seed(EXPERIMENT_SEED, ri as u64);
        for arch in Arch::ALL {
            points.push(SimPoint::new(format!("ur {arch} @ {rate}"), seed, move |s| {
                let payload = PayloadProfile::with_short_fraction(4, short_fraction);
                let workload = UniformRandom::new(rate, 5, s).with_payload(payload);
                run_arch(arch, short_fraction > 0.0, Box::new(workload), sim_cfg)
            }));
        }
    }
    points
}

/// Sweeps uniform-random traffic over `rates` for every architecture on
/// an explicit runner (the shared substrate of Figs. 11(a), 12(a) and
/// 12(d)); returns the points plus the batch summary for `--json`.
///
/// `short_fraction` sets the short-flit share of the payloads (0.0 for
/// the paper's baseline figures); shutdown is enabled iff it is
/// non-zero.
pub fn sweep_ur_on(
    runner: &Runner,
    rates: &[f64],
    short_fraction: f64,
    sim_cfg: SimConfig,
) -> (Vec<SweepPoint>, RunSummary) {
    let batch = runner.run(sweep_ur_points(rates, short_fraction, sim_cfg));
    let summary = batch.summary;
    let mut outcomes = batch.outcomes.into_iter();
    let mut out = Vec::with_capacity(rates.len() * Arch::ALL.len());
    for &rate in rates {
        for arch in Arch::ALL {
            let o = outcomes.next().expect("one outcome per point");
            out.push(SweepPoint { arch, rate, result: o.result });
        }
    }
    (out, summary)
}

/// [`sweep_ur_on`] with an environment-sized runner, discarding the
/// summary (the convenience form tests and figures use).
pub fn sweep_ur(rates: &[f64], short_fraction: f64, sim_cfg: SimConfig) -> Vec<SweepPoint> {
    sweep_ur_on(&Runner::from_env(), rates, short_fraction, sim_cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_arch_produces_power() {
        let w = UniformRandom::new(0.05, 5, EXPERIMENT_SEED);
        let r = run_arch(Arch::TwoDB, false, Box::new(w), quick_sim_config());
        assert!(!r.report.saturated);
        assert!(r.avg_power_w > 0.0);
        assert!(r.pdp > 0.0);
        assert!((r.pdp - r.avg_power_w * r.report.avg_latency).abs() < 1e-9);
    }

    #[test]
    fn sweep_covers_all_archs_and_rates() {
        let pts = sweep_ur(&[0.02, 0.05], 0.0, quick_sim_config());
        assert_eq!(pts.len(), 2 * Arch::ALL.len());
        for p in &pts {
            assert!(p.result.report.packets_ejected > 0, "{} @ {}", p.arch, p.rate);
        }
    }

    /// The headline zero-load ordering: 3DM-E < 3DM < 2DB in latency;
    /// 3DB sits between 3DM-E and 2DB for UR (fewer hops than 2DB).
    #[test]
    fn low_load_latency_ordering() {
        let pts = sweep_ur(&[0.05], 0.0, quick_sim_config());
        let lat = |a: Arch| {
            pts.iter().find(|p| p.arch == a).expect("arch present").result.report.avg_latency
        };
        assert!(lat(Arch::ThreeDME) < lat(Arch::ThreeDM));
        assert!(lat(Arch::ThreeDM) < lat(Arch::TwoDB));
        assert!(lat(Arch::ThreeDB) < lat(Arch::TwoDB));
        // NC ablations are slower than their parents.
        assert!(lat(Arch::ThreeDM) < lat(Arch::ThreeDMNc));
        assert!(lat(Arch::ThreeDME) < lat(Arch::ThreeDMENc));
    }
}
