//! Per-flit energy breakdown (paper Fig. 9).

use mira_power::energy::FlitEnergyBreakdown;

use crate::arch::Arch;
use crate::report::BarFigure;

/// The Fig. 9 quantity for one architecture.
pub fn flit_energy(arch: Arch) -> FlitEnergyBreakdown {
    arch.energy_model().flit_hop_breakdown()
}

/// Fig. 9: flit energy breakdown per architecture (pJ per flit-hop,
/// regular horizontal link).
pub fn fig9() -> BarFigure {
    let archs = Arch::HARDWARE;
    let groups = archs
        .iter()
        .map(|&a| {
            let b = flit_energy(a);
            (
                a.name().to_string(),
                vec![
                    b.buffer_j * 1e12,
                    b.xbar_j * 1e12,
                    b.arbitration_j * 1e12,
                    b.control_j * 1e12,
                    b.link_j * 1e12,
                    b.total_j() * 1e12,
                ],
            )
        })
        .collect();
    BarFigure {
        id: "fig9".into(),
        title: "Flit energy breakdown".into(),
        group_label: "architecture".into(),
        bar_labels: vec![
            "buffer".into(),
            "crossbar".into(),
            "arbiters".into(),
            "clock/ctrl".into(),
            "link".into(),
            "total".into(),
        ],
        groups,
        unit: "pJ per flit-hop".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_totals_are_component_sums() {
        let fig = fig9();
        for (arch, values) in &fig.groups {
            let sum: f64 = values[..5].iter().sum();
            assert!((sum - values[5]).abs() < 1e-6, "{arch}");
        }
    }

    /// Paper §3.4.2: 3DM has the lowest energy; 3DB the highest; the
    /// biggest 3DM saving comes from the link.
    #[test]
    fn fig9_orderings() {
        let fig = fig9();
        let total = |a: &str| fig.value(a, "total").unwrap();
        assert!(total("3DM") < total("3DM-E"));
        assert!(total("3DM-E") < total("2DB"));
        assert!(total("2DB") < total("3DB"));

        let link_saving = fig.value("2DB", "link").unwrap() - fig.value("3DM", "link").unwrap();
        let xbar_saving =
            fig.value("2DB", "crossbar").unwrap() - fig.value("3DM", "crossbar").unwrap();
        assert!(link_saving > xbar_saving);
    }

    /// The calibrated 35 % figure: 3DM total ≈ 0.65 × 2DB total.
    #[test]
    fn fig9_3dm_reduction() {
        let fig = fig9();
        let ratio = fig.value("3DM", "total").unwrap() / fig.value("2DB", "total").unwrap();
        assert!((ratio - 0.65).abs() < 0.05, "ratio {ratio:.3}");
    }
}
