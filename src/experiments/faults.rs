//! Fault-degradation exhibit: how gracefully each architecture sheds
//! service as the transient link-fault rate rises.
//!
//! The sweep runs 2DB, 3DM and 3DM-E under the same sub-saturation
//! uniform-random workload while ramping the per-flit transient
//! corruption rate (parts-per-million of flit deliveries). With the
//! paper's short-flit payload mix and layer shutdown enabled, upper-word
//! faults on gated layers are *masked* — one of the quiet robustness
//! wins of the multi-layer design. A deliberately tight retry budget
//! (two retries per link before the head packet is dropped) turns
//! escalating fault rates into visible degradation instead of unbounded
//! retransmission latency.
//!
//! Two curves per architecture: delivered fraction (packets ejected over
//! packets created in the measurement window) and average latency of the
//! packets that did arrive. Seeds derive per fault rate and are shared
//! across architectures, so comparisons stay paired exactly like the
//! injection-rate sweeps in [`common`](crate::experiments::common).

use serde::Serialize;

use mira_noc::fault::FaultConfig;
use mira_noc::sim::SimConfig;
use mira_noc::traffic::{PayloadProfile, UniformRandom};

use crate::arch::Arch;
use crate::experiments::common::{run_arch, RunResult, EXPERIMENT_SEED};
use crate::experiments::runner::{derive_seed, RunSummary, Runner, SimPoint};
use crate::report::{CurvePoint, Figure, Series};

/// The architectures the degradation sweep compares.
pub const FAULT_ARCHS: [Arch; 3] = [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME];

/// Offered load for the sweep, flits/node/cycle — comfortably below
/// saturation for every compared architecture so degradation comes from
/// faults, not congestion.
pub const FAULT_SWEEP_RATE: f64 = 0.10;

/// Retry budget for the sweep: small enough that high fault rates
/// produce measurable drops rather than unbounded retransmission.
pub const FAULT_SWEEP_RETRIES: u32 = 2;

/// Transient-fault-rate grid in parts per million of flit deliveries.
pub fn fault_rates_ppm(quick: bool) -> Vec<u32> {
    if quick {
        vec![0, 20_000, 150_000]
    } else {
        vec![0, 2_000, 10_000, 50_000, 150_000, 300_000]
    }
}

/// One sample of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Architecture.
    pub arch: Arch,
    /// Transient fault rate, ppm of flit deliveries.
    pub ppm: u32,
    /// The run.
    pub result: RunResult,
}

impl FaultPoint {
    /// Fraction of measured packets that made it out of the network.
    pub fn delivered_fraction(&self) -> f64 {
        let r = &self.result.report;
        if r.packets_created == 0 {
            return 1.0;
        }
        r.packets_ejected as f64 / r.packets_created as f64
    }
}

/// Runs one (architecture, fault-rate) point. The fault config starts
/// from `base_faults` so callers can compose the sweep with, say, a
/// `--kill-link` from the CLI; the transient rate, retry budget, and
/// seed are overridden per point.
pub fn run_fault_point(
    arch: Arch,
    ppm: u32,
    seed: u64,
    base_faults: FaultConfig,
    sim_cfg: SimConfig,
) -> RunResult {
    let faults =
        base_faults.with_transient(ppm).with_max_retries(FAULT_SWEEP_RETRIES).with_seed(seed);
    let payload = PayloadProfile::with_short_fraction(4, 0.5);
    let workload = UniformRandom::new(FAULT_SWEEP_RATE, 5, seed).with_payload(payload);
    run_arch(arch, true, Box::new(workload), sim_cfg.with_faults(faults))
}

/// The sweep as runner points, rate-major over [`FAULT_ARCHS`]. Seeds
/// derive per fault rate (`derive_seed(EXPERIMENT_SEED, rate index)`)
/// and are shared by all architectures at that rate.
pub fn fault_sweep_points(rates_ppm: &[u32], sim_cfg: SimConfig) -> Vec<SimPoint> {
    let base_faults = sim_cfg.faults;
    let mut points = Vec::new();
    for (ri, &ppm) in rates_ppm.iter().enumerate() {
        let seed = derive_seed(EXPERIMENT_SEED, ri as u64);
        for arch in FAULT_ARCHS {
            points.push(SimPoint::new(format!("fault {arch} @ {ppm}ppm"), seed, move |s| {
                run_fault_point(arch, ppm, s, base_faults, sim_cfg)
            }));
        }
    }
    points
}

/// The fault-degradation exhibit: paired delivered-fraction and latency
/// curves over the fault-rate grid.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweep {
    /// Delivered fraction vs fault rate, one series per architecture.
    pub delivered: Figure,
    /// Average latency of delivered packets vs fault rate.
    pub latency: Figure,
}

impl FaultSweep {
    /// Renders both figures as aligned text.
    pub fn to_text(&self) -> String {
        format!("{}\n{}", self.delivered.to_text(), self.latency.to_text())
    }
}

/// Runs the fault sweep on an explicit runner; returns the exhibit plus
/// the batch summary for `--json`.
pub fn fault_sweep_on(
    runner: &Runner,
    rates_ppm: &[u32],
    sim_cfg: SimConfig,
) -> (FaultSweep, RunSummary) {
    let batch = runner.run(fault_sweep_points(rates_ppm, sim_cfg));
    let summary = batch.summary;
    let mut outcomes = batch.outcomes.into_iter();
    let mut points = Vec::with_capacity(rates_ppm.len() * FAULT_ARCHS.len());
    for &ppm in rates_ppm {
        for arch in FAULT_ARCHS {
            let o = outcomes.next().expect("one outcome per point");
            points.push(FaultPoint { arch, ppm, result: o.result });
        }
    }
    (fault_sweep_figures(&points), summary)
}

/// [`fault_sweep_on`] with an environment-sized runner, discarding the
/// summary.
pub fn fault_sweep(rates_ppm: &[u32], sim_cfg: SimConfig) -> FaultSweep {
    fault_sweep_on(&Runner::from_env(), rates_ppm, sim_cfg).0
}

/// Builds the two figures from a rate-major point list.
pub fn fault_sweep_figures(points: &[FaultPoint]) -> FaultSweep {
    let series_for = |y: &dyn Fn(&FaultPoint) -> f64| -> Vec<Series> {
        FAULT_ARCHS
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    points
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.ppm as f64, y: y(p) })
                        .collect(),
                )
            })
            .collect()
    };
    FaultSweep {
        delivered: Figure {
            id: "fault-delivered".into(),
            title: "Delivered fraction vs transient fault rate".into(),
            x_label: "fault-ppm".into(),
            y_label: "delivered".into(),
            series: series_for(&|p| p.delivered_fraction()),
        },
        latency: Figure {
            id: "fault-latency".into(),
            title: "Average latency vs transient fault rate".into(),
            x_label: "fault-ppm".into(),
            y_label: "cycles".into(),
            series: series_for(&|p| p.result.report.avg_latency),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn sweep_degrades_monotonically() {
        let rates = [0u32, 150_000];
        let sweep = fault_sweep(&rates, quick_sim_config());
        for arch in FAULT_ARCHS {
            let name = arch.name();
            let d = sweep.delivered.series.iter().find(|s| s.label == name).expect("series");
            let l = sweep.latency.series.iter().find(|s| s.label == name).expect("series");
            assert_eq!(d.points.len(), rates.len());
            // Fault-free baseline delivers everything.
            assert!((d.points[0].y - 1.0).abs() < 1e-12, "{name}: {}", d.points[0].y);
            // Faults never *improve* delivery, and retransmission
            // backoff shows up as extra latency.
            assert!(d.points[1].y <= d.points[0].y + 1e-12, "{name}");
            assert!(
                l.points[1].y > l.points[0].y,
                "{name}: latency {} !> {}",
                l.points[1].y,
                l.points[0].y
            );
        }
    }
}
