//! Latency experiments (paper Fig. 11).

use mira_noc::sim::SimConfig;
use mira_traffic::nuca_ur::NucaBimodal;
use mira_traffic::trace::TraceReplay;
use mira_traffic::workloads::Application;
use mira_nuca::cmp::{CmpConfig, CmpSystem};

use crate::arch::Arch;
use crate::experiments::common::{run_arch, RunResult, SweepPoint, EXPERIMENT_SEED};
use crate::report::{BarFigure, CurvePoint, Figure, Series};

/// Fig. 11(a): average latency vs injection rate, uniform random.
///
/// Takes the shared UR sweep (see
/// [`sweep_ur`](crate::experiments::common::sweep_ur)) so the same runs
/// also feed Figs. 12(a) and 12(d).
pub fn fig11a(sweep: &[SweepPoint]) -> Figure {
    Figure {
        id: "fig11a".into(),
        title: "Average latency, uniform random traffic".into(),
        x_label: "inj-rate".into(),
        y_label: "cycles".into(),
        series: Arch::ALL
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    sweep
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.rate, y: p.result.report.avg_latency })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Runs the NUCA-UR bimodal workload for one architecture at a per-CPU
/// request rate.
pub fn run_nuca_ur(arch: Arch, request_rate: f64, sim_cfg: SimConfig) -> RunResult {
    let workload = NucaBimodal::new(
        arch.cpu_nodes(),
        arch.cache_nodes(),
        request_rate,
        EXPERIMENT_SEED,
    );
    run_arch(arch, false, Box::new(workload), sim_cfg)
}

/// Fig. 11(b): average latency under NUCA-UR request/response traffic,
/// swept over per-CPU request rates.
pub fn fig11b(request_rates: &[f64], sim_cfg: SimConfig) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    for arch in Arch::ALL {
        let points = request_rates
            .iter()
            .map(|&r| CurvePoint {
                x: r,
                y: run_nuca_ur(arch, r, sim_cfg).report.avg_latency,
            })
            .collect();
        series.push(Series::new(arch.name(), points));
    }
    Figure {
        id: "fig11b".into(),
        title: "Average latency, NUCA-UR bimodal traffic".into(),
        x_label: "req-rate".into(),
        y_label: "cycles".into(),
        series,
    }
}

/// Generates (and rate-calibrates) an application trace mapped onto one
/// architecture's node layout. The protocol event sequence is
/// seed-deterministic, so every architecture replays the *same logical
/// trace* on its own placement — the paper's methodology.
pub fn app_trace(app: Application, arch: Arch, cycles: u64) -> Vec<mira_traffic::trace::TraceRecord> {
    let mut sys = CmpSystem::new(CmpConfig::for_app(
        app,
        arch.cpu_nodes(),
        arch.cache_nodes(),
        EXPERIMENT_SEED,
    ));
    sys.calibrate_rate(app.profile().offered_load, 36, cycles.min(10_000));
    sys.generate_trace(cycles)
}

/// Runs one application trace on one architecture.
pub fn run_trace(app: Application, arch: Arch, shutdown: bool, cycles: u64, sim_cfg: SimConfig) -> RunResult {
    let trace = app_trace(app, arch, cycles);
    run_arch(arch, shutdown, Box::new(TraceReplay::new(trace)), sim_cfg)
}

/// Fig. 11(c): latency on the MP traces, normalised to 2DB.
pub fn fig11c(apps: &[Application], cycles: u64, sim_cfg: SimConfig) -> BarFigure {
    let archs = Arch::ALL;
    let mut groups = Vec::new();
    for &app in apps {
        // One run per architecture; 2DB doubles as the normalisation
        // base (no duplicate baseline run).
        let latencies: Vec<f64> = archs
            .iter()
            .map(|&a| run_trace(app, a, false, cycles, sim_cfg).report.avg_latency)
            .collect();
        let base = latencies[archs.iter().position(|&a| a == Arch::TwoDB).expect("2DB listed")];
        groups.push((app.name().to_string(), latencies.iter().map(|l| l / base).collect()));
    }
    BarFigure {
        id: "fig11c".into(),
        title: "MP-trace latency normalised to 2DB".into(),
        group_label: "application".into(),
        bar_labels: archs.iter().map(|a| a.name().to_string()).collect(),
        groups,
        unit: "normalised latency".into(),
    }
}

/// Fig. 11(d): average hop count per architecture for the three traffic
/// kinds (UR, NUCA-UR, MP traces).
pub fn fig11d(sweep: &[SweepPoint], nuca_rate: f64, trace_app: Application, cycles: u64, sim_cfg: SimConfig) -> BarFigure {
    let archs = Arch::HARDWARE;
    let mut groups = Vec::new();

    // UR at the lowest sampled rate.
    let min_rate = sweep.iter().map(|p| p.rate).fold(f64::INFINITY, f64::min);
    let ur: Vec<f64> = archs
        .iter()
        .map(|&a| {
            sweep
                .iter()
                .find(|p| p.arch == a && (p.rate - min_rate).abs() < 1e-9)
                .map(|p| p.result.report.avg_hops)
                .unwrap_or(f64::NAN)
        })
        .collect();
    groups.push(("UR".to_string(), ur));

    let nuca: Vec<f64> =
        archs.iter().map(|&a| run_nuca_ur(a, nuca_rate, sim_cfg).report.avg_hops).collect();
    groups.push(("NUCA-UR".to_string(), nuca));

    let traces: Vec<f64> = archs
        .iter()
        .map(|&a| run_trace(trace_app, a, false, cycles, sim_cfg).report.avg_hops)
        .collect();
    groups.push(("MP-trace".to_string(), traces));

    BarFigure {
        id: "fig11d".into(),
        title: "Average hop count".into(),
        group_label: "traffic".into(),
        bar_labels: archs.iter().map(|a| a.name().to_string()).collect(),
        groups,
        unit: "hops".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::{quick_sim_config, sweep_ur};

    #[test]
    fn fig11a_has_six_series() {
        let sweep = sweep_ur(&[0.05], 0.0, quick_sim_config());
        let fig = fig11a(&sweep);
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert_eq!(s.points.len(), 1);
            assert!(s.points[0].y > 5.0);
        }
    }

    #[test]
    fn nuca_ur_penalises_3db() {
        // Fig. 11(b)/(d): under NUCA-constrained traffic the 3DB layout
        // (CPUs on the top layer) raises the hop count above its UR
        // value, while the 6×6 layouts stay put.
        let cfg = quick_sim_config();
        let r3db = run_nuca_ur(Arch::ThreeDB, 0.05, cfg);
        let r2db = run_nuca_ur(Arch::TwoDB, 0.05, cfg);
        assert!(
            r3db.report.avg_hops > 3.0,
            "3DB NUCA hops {} must exceed its UR average ≈3.1",
            r3db.report.avg_hops
        );
        // 2DB's central CPU placement keeps NUCA hops close to 4.
        assert!(r2db.report.avg_hops < 4.2, "{}", r2db.report.avg_hops);
    }

    #[test]
    fn trace_replay_runs_on_all_archs() {
        let cfg = quick_sim_config();
        for arch in [Arch::TwoDB, Arch::ThreeDB, Arch::ThreeDME] {
            let r = run_trace(Application::Multimedia, arch, false, 3_000, cfg);
            assert!(r.report.packets_ejected > 0, "{arch}");
        }
    }

    #[test]
    fn fig11d_hop_ordering() {
        let sweep = sweep_ur(&[0.03], 0.0, quick_sim_config());
        let fig = fig11d(&sweep, 0.04, Application::Multimedia, 3_000, quick_sim_config());
        // UR hop counts: 3DM-E < 3DB < 2DB ≈ 3DM (paper Fig. 11(d)).
        let ur = |a: &str| fig.value("UR", a).expect("bar exists");
        assert!(ur("3DM-E") < ur("3DB"));
        assert!(ur("3DB") < ur("2DB"));
        assert!((ur("2DB") - ur("3DM")).abs() < 0.2);
    }
}

/// Tail-latency extension: p50/p95/p99 per architecture under UR
/// traffic at one load (the mean the paper plots hides the tail the
/// express channels flatten).
pub fn tail_latency(rate: f64, sim_cfg: SimConfig) -> crate::report::BarFigure {
    use mira_noc::traffic::UniformRandom;
    let mut groups = Vec::new();
    for arch in Arch::ALL {
        let w = UniformRandom::new(rate, 5, EXPERIMENT_SEED);
        let run = run_arch(arch, false, Box::new(w), sim_cfg);
        let h = &run.report.histogram;
        groups.push((
            arch.name().to_string(),
            vec![
                h.p50().unwrap_or(0) as f64,
                h.p95().unwrap_or(0) as f64,
                h.p99().unwrap_or(0) as f64,
            ],
        ));
    }
    crate::report::BarFigure {
        id: "ext-tail-latency".into(),
        title: format!("Tail latency, uniform random at {rate} flits/node/cycle"),
        group_label: "architecture".into(),
        bar_labels: vec!["p50".into(), "p95".into(), "p99".into()],
        groups,
        unit: "cycles".into(),
    }
}

#[cfg(test)]
mod tail_tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn tails_are_ordered_and_sane() {
        let fig = tail_latency(0.10, quick_sim_config());
        for arch in Arch::ALL {
            let p50 = fig.value(arch.name(), "p50").unwrap();
            let p95 = fig.value(arch.name(), "p95").unwrap();
            let p99 = fig.value(arch.name(), "p99").unwrap();
            assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "{arch}: {p50} {p95} {p99}");
        }
        // The express design flattens the tail relative to 2DB.
        let e99 = fig.value("3DM-E", "p99").unwrap();
        let b99 = fig.value("2DB", "p99").unwrap();
        assert!(e99 < b99, "3DM-E p99 {e99} vs 2DB {b99}");
    }
}
