//! Latency experiments (paper Fig. 11).

use mira_noc::sim::SimConfig;
use mira_nuca::cmp::{CmpConfig, CmpSystem};
use mira_traffic::nuca_ur::NucaBimodal;
use mira_traffic::trace::TraceReplay;
use mira_traffic::workloads::Application;

use crate::arch::Arch;
use crate::experiments::common::{run_arch, RunResult, SweepPoint, EXPERIMENT_SEED};
use crate::experiments::runner::{derive_seed, RunSummary, Runner, SimPoint};
use crate::report::{BarFigure, CurvePoint, Figure, Series};

/// Fig. 11(a): average latency vs injection rate, uniform random.
///
/// Takes the shared UR sweep (see
/// [`sweep_ur`](crate::experiments::common::sweep_ur)) so the same runs
/// also feed Figs. 12(a) and 12(d).
pub fn fig11a(sweep: &[SweepPoint]) -> Figure {
    Figure {
        id: "fig11a".into(),
        title: "Average latency, uniform random traffic".into(),
        x_label: "inj-rate".into(),
        y_label: "cycles".into(),
        series: Arch::ALL
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    sweep
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.rate, y: p.result.report.avg_latency })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Runs the NUCA-UR bimodal workload for one architecture at a per-CPU
/// request rate with an explicit seed.
pub fn run_nuca_ur_seeded(
    arch: Arch,
    request_rate: f64,
    seed: u64,
    sim_cfg: SimConfig,
) -> RunResult {
    let workload = NucaBimodal::new(arch.cpu_nodes(), arch.cache_nodes(), request_rate, seed);
    run_arch(arch, false, Box::new(workload), sim_cfg)
}

/// [`run_nuca_ur_seeded`] at the canonical [`EXPERIMENT_SEED`].
pub fn run_nuca_ur(arch: Arch, request_rate: f64, sim_cfg: SimConfig) -> RunResult {
    run_nuca_ur_seeded(arch, request_rate, EXPERIMENT_SEED, sim_cfg)
}

/// The NUCA-UR sweep as runner points, rate-major like
/// [`sweep_ur_points`](crate::experiments::common::sweep_ur_points):
/// seeds derive per rate and are shared across architectures (paired
/// comparisons).
pub(crate) fn nuca_sweep_points(request_rates: &[f64], sim_cfg: SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for (ri, &rate) in request_rates.iter().enumerate() {
        let seed = derive_seed(EXPERIMENT_SEED, ri as u64);
        for arch in Arch::ALL {
            points.push(SimPoint::new(format!("nuca {arch} @ {rate}"), seed, move |s| {
                run_nuca_ur_seeded(arch, rate, s, sim_cfg)
            }));
        }
    }
    points
}

/// Rebuilds per-architecture latency/power curves from a rate-major
/// NUCA sweep batch.
pub(crate) fn nuca_series(
    request_rates: &[f64],
    results: &[RunResult],
    y: impl Fn(&RunResult) -> f64,
) -> Vec<Series> {
    Arch::ALL
        .iter()
        .enumerate()
        .map(|(ai, &arch)| {
            Series::new(
                arch.name(),
                request_rates
                    .iter()
                    .enumerate()
                    .map(|(ri, &r)| CurvePoint { x: r, y: y(&results[ri * Arch::ALL.len() + ai]) })
                    .collect(),
            )
        })
        .collect()
}

/// Fig. 11(b) on an explicit runner; returns the batch summary too.
pub fn fig11b_on(
    runner: &Runner,
    request_rates: &[f64],
    sim_cfg: SimConfig,
) -> (Figure, RunSummary) {
    let batch = runner.run(nuca_sweep_points(request_rates, sim_cfg));
    let summary = batch.summary;
    let results = batch.outcomes.into_iter().map(|o| o.result).collect::<Vec<_>>();
    let fig = Figure {
        id: "fig11b".into(),
        title: "Average latency, NUCA-UR bimodal traffic".into(),
        x_label: "req-rate".into(),
        y_label: "cycles".into(),
        series: nuca_series(request_rates, &results, |r| r.report.avg_latency),
    };
    (fig, summary)
}

/// Fig. 11(b): average latency under NUCA-UR request/response traffic,
/// swept over per-CPU request rates.
pub fn fig11b(request_rates: &[f64], sim_cfg: SimConfig) -> Figure {
    fig11b_on(&Runner::from_env(), request_rates, sim_cfg).0
}

/// Generates (and rate-calibrates) an application trace mapped onto one
/// architecture's node layout. The protocol event sequence is
/// seed-deterministic, so every architecture replays the *same logical
/// trace* on its own placement — the paper's methodology.
pub fn app_trace(
    app: Application,
    arch: Arch,
    cycles: u64,
) -> Vec<mira_traffic::trace::TraceRecord> {
    let mut sys = CmpSystem::new(CmpConfig::for_app(
        app,
        arch.cpu_nodes(),
        arch.cache_nodes(),
        EXPERIMENT_SEED,
    ));
    sys.calibrate_rate(app.profile().offered_load, 36, cycles.min(10_000));
    sys.generate_trace(cycles)
}

/// Runs one application trace on one architecture.
pub fn run_trace(
    app: Application,
    arch: Arch,
    shutdown: bool,
    cycles: u64,
    sim_cfg: SimConfig,
) -> RunResult {
    let trace = app_trace(app, arch, cycles);
    run_arch(arch, shutdown, Box::new(TraceReplay::new(trace)), sim_cfg)
}

/// The MP-trace batch as runner points, app-major over `Arch::ALL`.
///
/// Trace points pin [`EXPERIMENT_SEED`] rather than deriving per-point
/// seeds: every architecture must replay the *same logical trace* for
/// the normalised comparison to be apples-to-apples (the paper's
/// methodology; see [`app_trace`]).
pub(crate) fn trace_points(
    apps: &[Application],
    shutdown_multilayer: bool,
    cycles: u64,
    sim_cfg: SimConfig,
) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for &app in apps {
        for arch in Arch::ALL {
            let shutdown = shutdown_multilayer && arch.paper_arch().is_multilayer();
            points.push(SimPoint::new(
                format!("trace {} on {arch}", app.name()),
                EXPERIMENT_SEED,
                move |_| run_trace(app, arch, shutdown, cycles, sim_cfg),
            ));
        }
    }
    points
}

/// Groups an app-major trace batch into per-app bars normalised to the
/// 2DB entry.
pub(crate) fn trace_groups(
    apps: &[Application],
    results: &[RunResult],
    metric: impl Fn(&RunResult) -> f64,
) -> Vec<(String, Vec<f64>)> {
    let n = Arch::ALL.len();
    let base_idx = Arch::ALL.iter().position(|&a| a == Arch::TwoDB).expect("2DB listed");
    apps.iter()
        .enumerate()
        .map(|(ai, app)| {
            let slice = &results[ai * n..(ai + 1) * n];
            let base = metric(&slice[base_idx]);
            (app.name().to_string(), slice.iter().map(|r| metric(r) / base).collect())
        })
        .collect()
}

/// Fig. 11(c) on an explicit runner; returns the batch summary too.
pub fn fig11c_on(
    runner: &Runner,
    apps: &[Application],
    cycles: u64,
    sim_cfg: SimConfig,
) -> (BarFigure, RunSummary) {
    let batch = runner.run(trace_points(apps, false, cycles, sim_cfg));
    let summary = batch.summary;
    let results: Vec<RunResult> = batch.outcomes.into_iter().map(|o| o.result).collect();
    let fig = BarFigure {
        id: "fig11c".into(),
        title: "MP-trace latency normalised to 2DB".into(),
        group_label: "application".into(),
        bar_labels: Arch::ALL.iter().map(|a| a.name().to_string()).collect(),
        groups: trace_groups(apps, &results, |r| r.report.avg_latency),
        unit: "normalised latency".into(),
    };
    (fig, summary)
}

/// Fig. 11(c): latency on the MP traces, normalised to 2DB.
pub fn fig11c(apps: &[Application], cycles: u64, sim_cfg: SimConfig) -> BarFigure {
    fig11c_on(&Runner::from_env(), apps, cycles, sim_cfg).0
}

/// Fig. 11(d) on an explicit runner: the NUCA and trace columns are
/// fresh simulation points (one per hardware architecture), fanned out
/// as a single batch; the UR column reuses the shared sweep.
pub fn fig11d_on(
    runner: &Runner,
    sweep: &[SweepPoint],
    nuca_rate: f64,
    trace_app: Application,
    cycles: u64,
    sim_cfg: SimConfig,
) -> (BarFigure, RunSummary) {
    let archs = Arch::HARDWARE;
    let mut groups = Vec::new();

    // UR at the lowest sampled rate.
    let min_rate = sweep.iter().map(|p| p.rate).fold(f64::INFINITY, f64::min);
    let ur: Vec<f64> = archs
        .iter()
        .map(|&a| {
            sweep
                .iter()
                .find(|p| p.arch == a && (p.rate - min_rate).abs() < 1e-9)
                .map(|p| p.result.report.avg_hops)
                .unwrap_or(f64::NAN)
        })
        .collect();
    groups.push(("UR".to_string(), ur));

    // NUCA and trace columns in one batch: all points share the
    // experiment seed (one logical workload per column, replayed on
    // every layout).
    let mut points = Vec::new();
    for &a in &archs {
        points.push(SimPoint::new(format!("nuca {a} @ {nuca_rate}"), EXPERIMENT_SEED, move |s| {
            run_nuca_ur_seeded(a, nuca_rate, s, sim_cfg)
        }));
    }
    for &a in &archs {
        points.push(SimPoint::new(
            format!("trace {} on {a}", trace_app.name()),
            EXPERIMENT_SEED,
            move |_| run_trace(trace_app, a, false, cycles, sim_cfg),
        ));
    }
    let batch = runner.run(points);
    let summary = batch.summary;
    let hops: Vec<f64> = batch.outcomes.iter().map(|o| o.result.report.avg_hops).collect();
    groups.push(("NUCA-UR".to_string(), hops[..archs.len()].to_vec()));
    groups.push(("MP-trace".to_string(), hops[archs.len()..].to_vec()));

    let fig = BarFigure {
        id: "fig11d".into(),
        title: "Average hop count".into(),
        group_label: "traffic".into(),
        bar_labels: archs.iter().map(|a| a.name().to_string()).collect(),
        groups,
        unit: "hops".into(),
    };
    (fig, summary)
}

/// Fig. 11(d): average hop count per architecture for the three traffic
/// kinds (UR, NUCA-UR, MP traces).
pub fn fig11d(
    sweep: &[SweepPoint],
    nuca_rate: f64,
    trace_app: Application,
    cycles: u64,
    sim_cfg: SimConfig,
) -> BarFigure {
    fig11d_on(&Runner::from_env(), sweep, nuca_rate, trace_app, cycles, sim_cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::{quick_sim_config, sweep_ur};

    #[test]
    fn fig11a_has_six_series() {
        let sweep = sweep_ur(&[0.05], 0.0, quick_sim_config());
        let fig = fig11a(&sweep);
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert_eq!(s.points.len(), 1);
            assert!(s.points[0].y > 5.0);
        }
    }

    #[test]
    fn nuca_ur_penalises_3db() {
        // Fig. 11(b)/(d): under NUCA-constrained traffic the 3DB layout
        // (CPUs on the top layer) raises the hop count above its UR
        // value, while the 6×6 layouts stay put.
        let cfg = quick_sim_config();
        let r3db = run_nuca_ur(Arch::ThreeDB, 0.05, cfg);
        let r2db = run_nuca_ur(Arch::TwoDB, 0.05, cfg);
        assert!(
            r3db.report.avg_hops > 3.0,
            "3DB NUCA hops {} must exceed its UR average ≈3.1",
            r3db.report.avg_hops
        );
        // 2DB's central CPU placement keeps NUCA hops close to 4.
        assert!(r2db.report.avg_hops < 4.2, "{}", r2db.report.avg_hops);
    }

    #[test]
    fn trace_replay_runs_on_all_archs() {
        let cfg = quick_sim_config();
        for arch in [Arch::TwoDB, Arch::ThreeDB, Arch::ThreeDME] {
            let r = run_trace(Application::Multimedia, arch, false, 3_000, cfg);
            assert!(r.report.packets_ejected > 0, "{arch}");
        }
    }

    #[test]
    fn fig11d_hop_ordering() {
        let sweep = sweep_ur(&[0.03], 0.0, quick_sim_config());
        let fig = fig11d(&sweep, 0.04, Application::Multimedia, 3_000, quick_sim_config());
        // UR hop counts: 3DM-E < 3DB < 2DB ≈ 3DM (paper Fig. 11(d)).
        let ur = |a: &str| fig.value("UR", a).expect("bar exists");
        assert!(ur("3DM-E") < ur("3DB"));
        assert!(ur("3DB") < ur("2DB"));
        assert!((ur("2DB") - ur("3DM")).abs() < 0.2);
    }
}

/// Tail-latency extension: p50/p95/p99/p99.9 per architecture under UR
/// traffic at one load (the mean the paper plots hides the tail the
/// express channels flatten).
pub fn tail_latency(rate: f64, sim_cfg: SimConfig) -> crate::report::BarFigure {
    use mira_noc::traffic::UniformRandom;
    let points = Arch::ALL
        .iter()
        .map(|&arch| {
            SimPoint::new(format!("tail {arch} @ {rate}"), EXPERIMENT_SEED, move |s| {
                let w = UniformRandom::new(rate, 5, s);
                run_arch(arch, false, Box::new(w), sim_cfg)
            })
        })
        .collect();
    let batch = Runner::from_env().run(points);
    let groups = batch
        .outcomes
        .iter()
        .map(|o| {
            let h = &o.result.report.histogram;
            (
                o.result.arch.name().to_string(),
                vec![
                    h.p50().unwrap_or(0) as f64,
                    h.p95().unwrap_or(0) as f64,
                    h.p99().unwrap_or(0) as f64,
                    h.p999().unwrap_or(0) as f64,
                ],
            )
        })
        .collect();
    crate::report::BarFigure {
        id: "ext-tail-latency".into(),
        title: format!("Tail latency, uniform random at {rate} flits/node/cycle"),
        group_label: "architecture".into(),
        bar_labels: vec!["p50".into(), "p95".into(), "p99".into(), "p99.9".into()],
        groups,
        unit: "cycles".into(),
    }
}

/// One architecture's journey-based tail attribution.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ArchAttribution {
    /// Architecture name.
    pub arch: String,
    /// The tail-attribution report over sampled journeys.
    pub report: mira_noc::JourneyReport,
}

/// Tail-latency *attribution* extension: where packets in each latency
/// bucket spend their cycles, per architecture, from sampled packet
/// journeys.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TailAttribution {
    /// Offered load of the runs, flits/node/cycle.
    pub rate: f64,
    /// Per-architecture attribution reports, in [`Arch::ALL`] order.
    pub archs: Vec<ArchAttribution>,
}

impl TailAttribution {
    /// Renders the attribution as a table: one row per (architecture,
    /// bucket) with the dominant component and the top of the
    /// per-component breakdown.
    pub fn to_text(&self) -> String {
        let mut table = crate::report::TextTable {
            id: "ext-tail-attribution".into(),
            title: format!(
                "Tail-latency attribution, uniform random at {} flits/node/cycle",
                self.rate
            ),
            headers: vec![
                "arch".into(),
                "bucket".into(),
                "packets".into(),
                "mean cycles".into(),
                "dominant".into(),
                "breakdown".into(),
            ],
            rows: Vec::new(),
        };
        for a in &self.archs {
            for b in &a.report.buckets {
                let (dom, dom_cycles) = b.mean.dominant();
                let total = b.mean.total().max(f64::MIN_POSITIVE);
                let mut parts: Vec<(&str, f64)> = b.mean.parts().to_vec();
                parts.sort_by(|x, y| y.1.total_cmp(&x.1));
                let breakdown = parts
                    .iter()
                    .take(3)
                    .filter(|(_, v)| *v > 0.0)
                    .map(|(name, v)| format!("{name} {:.0}%", v / total * 100.0))
                    .collect::<Vec<_>>()
                    .join(", ");
                table.rows.push(vec![
                    a.arch.clone(),
                    b.label.clone(),
                    b.count.to_string(),
                    format!("{:.1}", b.mean_latency),
                    format!("{dom} ({:.0}%)", dom_cycles / total * 100.0),
                    breakdown,
                ]);
            }
        }
        table.to_text()
    }
}

/// Runs the UR tail sweep with journey sampling enabled and aggregates
/// each architecture's journeys into its attribution report.
///
/// `sample_ppm` is the head-sampling rate in ppm (clamped to 1e6); the
/// runs are separate from [`tail_latency`]'s so enabling sampling never
/// perturbs the published percentile bars.
pub fn tail_attribution(rate: f64, sample_ppm: u32, sim_cfg: SimConfig) -> TailAttribution {
    use mira_noc::traffic::UniformRandom;
    let sim_cfg = sim_cfg.with_telemetry(sim_cfg.telemetry.with_journeys(sample_ppm.max(1)));
    let points = Arch::ALL
        .iter()
        .map(|&arch| {
            SimPoint::new(format!("attr {arch} @ {rate}"), EXPERIMENT_SEED, move |s| {
                let w = UniformRandom::new(rate, 5, s);
                run_arch(arch, false, Box::new(w), sim_cfg)
            })
        })
        .collect();
    let batch = Runner::from_env().run(points);
    TailAttribution {
        rate,
        archs: batch
            .outcomes
            .into_iter()
            .map(|o| ArchAttribution {
                arch: o.result.arch.name().to_string(),
                report: o.result.report.journeys.expect("journey sampling enabled"),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tail_tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn tails_are_ordered_and_sane() {
        let fig = tail_latency(0.10, quick_sim_config());
        for arch in Arch::ALL {
            let p50 = fig.value(arch.name(), "p50").unwrap();
            let p95 = fig.value(arch.name(), "p95").unwrap();
            let p99 = fig.value(arch.name(), "p99").unwrap();
            let p999 = fig.value(arch.name(), "p99.9").unwrap();
            assert!(
                p50 > 0.0 && p50 <= p95 && p95 <= p99 && p99 <= p999,
                "{arch}: {p50} {p95} {p99} {p999}"
            );
        }
        // The express design flattens the tail relative to 2DB.
        let e99 = fig.value("3DM-E", "p99").unwrap();
        let b99 = fig.value("2DB", "p99").unwrap();
        assert!(e99 < b99, "3DM-E p99 {e99} vs 2DB {b99}");
    }

    #[test]
    fn attribution_accounts_for_bucket_means() {
        let attr = tail_attribution(0.10, 1_000_000, quick_sim_config());
        assert_eq!(attr.archs.len(), Arch::ALL.len());
        for a in &attr.archs {
            assert_eq!(a.report.sample_ppm, 1_000_000);
            assert!(a.report.sampled > 0, "{}: sampled journeys", a.arch);
            assert_eq!(a.report.buckets.len(), 4, "{}: p50/p95/p99/p99.9", a.arch);
            for b in &a.report.buckets {
                assert!(b.count > 0, "{} {}", a.arch, b.label);
                // The per-component means sum to the bucket's mean
                // latency: every cycle of every sampled packet is
                // attributed somewhere.
                assert!(
                    (b.mean.total() - b.mean_latency).abs() < 1e-6,
                    "{} {}: {} vs {}",
                    a.arch,
                    b.label,
                    b.mean.total(),
                    b.mean_latency
                );
            }
        }
        let text = attr.to_text();
        assert!(text.contains("p99.9"), "table lists the deepest bucket:\n{text}");
    }
}
