//! Experiment runners: one module per group of tables/figures.
//!
//! Each runner regenerates the data behind one of the paper's exhibits
//! and returns it as a [`Figure`](crate::report::Figure),
//! [`BarFigure`](crate::report::BarFigure) or
//! [`TextTable`](crate::report::TextTable); the `mira-bench` binaries
//! print them. The experiment↔module map lives in DESIGN.md §5.

pub mod ablations;
pub mod common;
pub mod energy;
pub mod faults;
pub mod latency;
pub mod patterns;
pub mod power;
pub mod runner;
pub mod scorecard;
pub mod tables;
pub mod thermal;

pub use common::{quick_sim_config, run_arch, sweep_ur, RunResult, SweepPoint, EXPERIMENT_SEED};
pub use runner::{derive_seed, PointOutcome, RunBatch, RunSummary, Runner, SimPoint};
