//! Workload-characterisation exhibits (paper Figs. 1, 2, 13(a)).
//!
//! These regenerate the paper's motivation data from the synthesised
//! application traces: word-pattern breakdown, packet-type mix, and
//! short-flit percentages.

use mira_noc::packet::PacketClass;
use mira_nuca::cmp::{CmpConfig, CmpSystem, TraceStats};
use mira_traffic::workloads::Application;

use crate::arch::Arch;
use crate::experiments::common::EXPERIMENT_SEED;
use crate::report::BarFigure;

/// Generates the statistics of one application's trace (on the 2DB
/// layout; the statistics are layout-independent).
pub fn app_stats(app: Application, cycles: u64) -> TraceStats {
    let arch = Arch::TwoDB;
    let mut sys = CmpSystem::new(CmpConfig::for_app(
        app,
        arch.cpu_nodes(),
        arch.cache_nodes(),
        EXPERIMENT_SEED,
    ));
    let trace = sys.generate_trace(cycles);
    TraceStats::from_trace(&trace, cycles)
}

/// Fig. 1: data-pattern breakdown (all-0 / all-1 / other words) of the
/// cache-line payloads per application.
pub fn fig1(apps: &[Application], cycles: u64) -> BarFigure {
    let mut groups = Vec::new();
    for &app in apps {
        let stats = app_stats(app, cycles);
        let (z, o, other) = stats.patterns.fractions();
        groups.push((app.name().to_string(), vec![z * 100.0, o * 100.0, other * 100.0]));
    }
    BarFigure {
        id: "fig1".into(),
        title: "Data pattern breakdown of cache-line words".into(),
        group_label: "application".into(),
        bar_labels: vec!["all-0".into(), "all-1".into(), "other".into()],
        groups,
        unit: "% of words".into(),
    }
}

/// Fig. 2: packet-type distribution per application.
pub fn fig2(apps: &[Application], cycles: u64) -> BarFigure {
    let mut groups = Vec::new();
    for &app in apps {
        let stats = app_stats(app, cycles);
        let total = stats.packets.max(1) as f64;
        let values = PacketClass::ALL
            .iter()
            .map(|c| stats.packets_per_class[c.table_index()] as f64 / total * 100.0)
            .collect();
        groups.push((app.name().to_string(), values));
    }
    BarFigure {
        id: "fig2".into(),
        title: "Packet type distribution".into(),
        group_label: "application".into(),
        bar_labels: PacketClass::ALL.iter().map(|c| c.name().to_string()).collect(),
        groups,
        unit: "% of packets".into(),
    }
}

/// Fig. 13(a): short-flit percentage (over data payload flits) per
/// application.
pub fn fig13a(apps: &[Application], cycles: u64) -> BarFigure {
    let mut groups = Vec::new();
    for &app in apps {
        let stats = app_stats(app, cycles);
        groups.push((app.name().to_string(), vec![stats.short_payload_fraction() * 100.0]));
    }
    BarFigure {
        id: "fig13a".into(),
        title: "Short flit percentage (data payload flits)".into(),
        group_label: "application".into(),
        bar_labels: vec!["short %".into()],
        groups,
        unit: "% of payload flits".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APPS: [Application; 3] =
        [Application::Tpcw, Application::Barnes, Application::Multimedia];

    #[test]
    fn fig1_fractions_sum_to_100() {
        let fig = fig1(&APPS, 5_000);
        for (app, values) in &fig.groups {
            let sum: f64 = values.iter().sum();
            assert!((sum - 100.0).abs() < 0.5, "{app}: {sum}");
        }
    }

    #[test]
    fn fig1_commercial_apps_have_more_zeros() {
        let fig = fig1(&APPS, 8_000);
        let tpcw = fig.value("tpcw", "all-0").unwrap();
        let mm = fig.value("multimedia", "all-0").unwrap();
        assert!(tpcw > mm + 20.0, "tpcw {tpcw:.1}% vs multimedia {mm:.1}%");
    }

    #[test]
    fn fig2_control_heavy() {
        let fig = fig2(&APPS, 8_000);
        for (app, values) in &fig.groups {
            let sum: f64 = values.iter().sum();
            assert!((sum - 100.0).abs() < 0.5, "{app}");
        }
        // Requests + invals + acks outnumber data responses.
        let read = fig.value("tpcw", "read-req").unwrap();
        assert!(read > 10.0);
    }

    #[test]
    fn fig13a_matches_profiles() {
        let fig = fig13a(&APPS, 8_000);
        for app in APPS {
            let got = fig.value(app.name(), "short %").unwrap();
            let want = app.profile().short_flit_fraction * 100.0;
            assert!((got - want).abs() < 6.0, "{app}: {got:.1}% vs {want:.1}%");
        }
    }
}
