//! Power experiments (paper Figs. 12 and 13(a)-(b)).

use mira_noc::sim::SimConfig;
use mira_noc::traffic::{PayloadProfile, UniformRandom};
use mira_traffic::workloads::Application;

use crate::arch::Arch;
use crate::experiments::common::{run_arch, SweepPoint, EXPERIMENT_SEED};
use crate::experiments::latency::{run_nuca_ur, run_trace};
use crate::report::{BarFigure, CurvePoint, Figure, Series};

/// Fig. 12(a): average network power vs injection rate, uniform random,
/// 0 % short flits (pure structural comparison).
pub fn fig12a(sweep: &[SweepPoint]) -> Figure {
    Figure {
        id: "fig12a".into(),
        title: "Average power, uniform random traffic (0% short flits)".into(),
        x_label: "inj-rate".into(),
        y_label: "watts".into(),
        series: Arch::ALL
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    sweep
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.rate, y: p.result.avg_power_w })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Fig. 12(b): average network power under NUCA-UR traffic.
pub fn fig12b(request_rates: &[f64], sim_cfg: SimConfig) -> Figure {
    let mut series = Vec::new();
    for arch in Arch::ALL {
        let points = request_rates
            .iter()
            .map(|&r| CurvePoint { x: r, y: run_nuca_ur(arch, r, sim_cfg).avg_power_w })
            .collect();
        series.push(Series::new(arch.name(), points));
    }
    Figure {
        id: "fig12b".into(),
        title: "Average power, NUCA-UR bimodal traffic".into(),
        x_label: "req-rate".into(),
        y_label: "watts".into(),
        series,
    }
}

/// Fig. 12(c): network power on the MP traces normalised to 2DB.
///
/// Layer shutdown is enabled for the multi-layered designs and **off for
/// the 2DB/3DB base cases**, matching the paper ("with no layer shut
/// down in the base cases").
pub fn fig12c(apps: &[Application], cycles: u64, sim_cfg: SimConfig) -> BarFigure {
    let archs = Arch::ALL;
    let mut groups = Vec::new();
    for &app in apps {
        // One run per architecture; the 2DB run (shutdown off) is the
        // normalisation base.
        let powers: Vec<f64> = archs
            .iter()
            .map(|&a| {
                let shutdown = a.paper_arch().is_multilayer();
                run_trace(app, a, shutdown, cycles, sim_cfg).avg_power_w
            })
            .collect();
        let base = powers[archs.iter().position(|&a| a == Arch::TwoDB).expect("2DB listed")];
        groups.push((app.name().to_string(), powers.iter().map(|p| p / base).collect()));
    }
    BarFigure {
        id: "fig12c".into(),
        title: "MP-trace power normalised to 2DB (shutdown on 3DM/3DM-E)".into(),
        group_label: "application".into(),
        bar_labels: archs.iter().map(|a| a.name().to_string()).collect(),
        groups,
        unit: "normalised power".into(),
    }
}

/// Fig. 12(d): power–delay product vs injection rate, normalised to 2DB
/// at each rate.
pub fn fig12d(sweep: &[SweepPoint]) -> Figure {
    let base: Vec<(f64, f64)> = sweep
        .iter()
        .filter(|p| p.arch == Arch::TwoDB)
        .map(|p| (p.rate, p.result.pdp))
        .collect();
    let base_at = |x: f64| {
        base.iter().find(|(r, _)| (r - x).abs() < 1e-9).map(|(_, v)| *v).unwrap_or(f64::NAN)
    };
    Figure {
        id: "fig12d".into(),
        title: "Power-delay product normalised to 2DB (uniform random)".into(),
        x_label: "inj-rate".into(),
        y_label: "normalised PDP".into(),
        series: Arch::ALL
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    sweep
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.rate, y: p.result.pdp / base_at(p.rate) })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Fig. 13(b): power saving from the layer-shutdown technique at 25 %
/// and 50 % short flits, uniform random, for the shutdown-capable
/// designs.
pub fn fig13b(rate: f64, sim_cfg: SimConfig) -> BarFigure {
    let archs = [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME];
    let fractions = [0.25, 0.50];
    let mut groups = Vec::new();
    for &frac in &fractions {
        let mut values = Vec::new();
        for &arch in &archs {
            let base = {
                let w = UniformRandom::new(rate, 5, EXPERIMENT_SEED)
                    .with_payload(PayloadProfile::dense(4));
                run_arch(arch, false, Box::new(w), sim_cfg).avg_power_w
            };
            let gated = {
                let w = UniformRandom::new(rate, 5, EXPERIMENT_SEED)
                    .with_payload(PayloadProfile::with_short_fraction(4, frac));
                run_arch(arch, true, Box::new(w), sim_cfg).avg_power_w
            };
            values.push((1.0 - gated / base) * 100.0);
        }
        groups.push((format!("{:.0}% short", frac * 100.0), values));
    }
    BarFigure {
        id: "fig13b".into(),
        title: "Power saving from layer shutdown (uniform random)".into(),
        group_label: "short flits".into(),
        bar_labels: archs.iter().map(|a| a.name().to_string()).collect(),
        groups,
        unit: "% saving".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::{quick_sim_config, sweep_ur};

    /// Headline power ordering at UR (paper §4.2.2): 3DM-E and 3DM are
    /// the cheapest; 3DB is cheaper than 2DB per network (fewer hops)
    /// but worse per flit.
    #[test]
    fn fig12a_power_ordering() {
        let sweep = sweep_ur(&[0.10], 0.0, quick_sim_config());
        let fig = fig12a(&sweep);
        let p = |a: &str| fig.series.iter().find(|s| s.label == a).unwrap().points[0].y;
        assert!(p("3DM") < p("2DB"), "3DM {} vs 2DB {}", p("3DM"), p("2DB"));
        assert!(p("3DM-E") < p("2DB"));
        assert!(p("3DM") < p("3DB"));
        // 2DB is the most power-hungry of the four (paper: 3DM saves 22%
        // over 2DB and 15% over 3DB ⇒ 3DB below 2DB).
        assert!(p("3DB") < p("2DB"));
    }

    /// Fig. 12(d): 3DM-E has the best PDP, 2DB the worst.
    #[test]
    fn fig12d_pdp_extremes() {
        let sweep = sweep_ur(&[0.10], 0.0, quick_sim_config());
        let fig = fig12d(&sweep);
        let v = |a: &str| fig.series.iter().find(|s| s.label == a).unwrap().points[0].y;
        assert!((v("2DB") - 1.0).abs() < 1e-9, "2DB is the normalisation base");
        for arch in ["3DB", "3DM", "3DM-E"] {
            assert!(v(arch) < 1.0, "{arch}: {}", v(arch));
        }
        assert!(v("3DM-E") <= v("3DM"));
    }

    /// Fig. 13(b): ~36 % saving at 50 % short flits, about half that at
    /// 25 % (paper §4.2.2).
    #[test]
    fn fig13b_shutdown_savings() {
        let fig = fig13b(0.10, quick_sim_config());
        for arch in ["2DB", "3DM", "3DM-E"] {
            let s50 = fig.value("50% short", arch).unwrap();
            let s25 = fig.value("25% short", arch).unwrap();
            // Lower edge calibrated against the vendored deterministic
            // RNG stream (3DM lands at ~24.8% under the quick config).
            assert!((23.0..=45.0).contains(&s50), "{arch} @50%: {s50:.1}%");
            assert!(s25 > 0.4 * s50 && s25 < 0.65 * s50, "{arch}: 25% {s25:.1} vs 50% {s50:.1}");
        }
    }
}
