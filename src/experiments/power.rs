//! Power experiments (paper Figs. 12 and 13(a)-(b)).

use mira_noc::sim::SimConfig;
use mira_noc::traffic::{PayloadProfile, UniformRandom};
use mira_traffic::workloads::Application;

use crate::arch::Arch;
use crate::experiments::common::{run_arch, RunResult, SweepPoint, EXPERIMENT_SEED};
use crate::experiments::latency::{nuca_series, nuca_sweep_points, trace_groups, trace_points};
use crate::experiments::runner::{RunSummary, Runner, SimPoint};
use crate::report::{BarFigure, CurvePoint, Figure, Series};

/// Fig. 12(a): average network power vs injection rate, uniform random,
/// 0 % short flits (pure structural comparison).
pub fn fig12a(sweep: &[SweepPoint]) -> Figure {
    Figure {
        id: "fig12a".into(),
        title: "Average power, uniform random traffic (0% short flits)".into(),
        x_label: "inj-rate".into(),
        y_label: "watts".into(),
        series: Arch::ALL
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    sweep
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.rate, y: p.result.avg_power_w })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Fig. 12(b) on an explicit runner; returns the batch summary too.
pub fn fig12b_on(
    runner: &Runner,
    request_rates: &[f64],
    sim_cfg: SimConfig,
) -> (Figure, RunSummary) {
    let batch = runner.run(nuca_sweep_points(request_rates, sim_cfg));
    let summary = batch.summary;
    let results: Vec<RunResult> = batch.outcomes.into_iter().map(|o| o.result).collect();
    let fig = Figure {
        id: "fig12b".into(),
        title: "Average power, NUCA-UR bimodal traffic".into(),
        x_label: "req-rate".into(),
        y_label: "watts".into(),
        series: nuca_series(request_rates, &results, |r| r.avg_power_w),
    };
    (fig, summary)
}

/// Fig. 12(b): average network power under NUCA-UR traffic.
pub fn fig12b(request_rates: &[f64], sim_cfg: SimConfig) -> Figure {
    fig12b_on(&Runner::from_env(), request_rates, sim_cfg).0
}

/// Fig. 12(c): network power on the MP traces normalised to 2DB.
///
/// Layer shutdown is enabled for the multi-layered designs and **off for
/// the 2DB/3DB base cases**, matching the paper ("with no layer shut
/// down in the base cases").
pub fn fig12c(apps: &[Application], cycles: u64, sim_cfg: SimConfig) -> BarFigure {
    fig12c_on(&Runner::from_env(), apps, cycles, sim_cfg).0
}

/// Fig. 12(c) on an explicit runner: one point per (app, architecture),
/// shutdown enabled on the multi-layered designs, the 2DB run (shutdown
/// off) as the normalisation base.
pub fn fig12c_on(
    runner: &Runner,
    apps: &[Application],
    cycles: u64,
    sim_cfg: SimConfig,
) -> (BarFigure, RunSummary) {
    let batch = runner.run(trace_points(apps, true, cycles, sim_cfg));
    let summary = batch.summary;
    let results: Vec<RunResult> = batch.outcomes.into_iter().map(|o| o.result).collect();
    let fig = BarFigure {
        id: "fig12c".into(),
        title: "MP-trace power normalised to 2DB (shutdown on 3DM/3DM-E)".into(),
        group_label: "application".into(),
        bar_labels: Arch::ALL.iter().map(|a| a.name().to_string()).collect(),
        groups: trace_groups(apps, &results, |r| r.avg_power_w),
        unit: "normalised power".into(),
    };
    (fig, summary)
}

/// Fig. 12(d): power–delay product vs injection rate, normalised to 2DB
/// at each rate.
pub fn fig12d(sweep: &[SweepPoint]) -> Figure {
    let base: Vec<(f64, f64)> =
        sweep.iter().filter(|p| p.arch == Arch::TwoDB).map(|p| (p.rate, p.result.pdp)).collect();
    let base_at = |x: f64| {
        base.iter().find(|(r, _)| (r - x).abs() < 1e-9).map(|(_, v)| *v).unwrap_or(f64::NAN)
    };
    Figure {
        id: "fig12d".into(),
        title: "Power-delay product normalised to 2DB (uniform random)".into(),
        x_label: "inj-rate".into(),
        y_label: "normalised PDP".into(),
        series: Arch::ALL
            .iter()
            .map(|&arch| {
                Series::new(
                    arch.name(),
                    sweep
                        .iter()
                        .filter(|p| p.arch == arch)
                        .map(|p| CurvePoint { x: p.rate, y: p.result.pdp / base_at(p.rate) })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Fig. 13(b): power saving from the layer-shutdown technique at 25 %
/// and 50 % short flits, uniform random, for the shutdown-capable
/// designs.
pub fn fig13b(rate: f64, sim_cfg: SimConfig) -> BarFigure {
    let archs = [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME];
    let fractions = [0.25, 0.50];

    // One batch: per-arch base runs (dense payload, shutdown off — the
    // base is independent of the short fraction, so it runs once), then
    // the gated runs, fraction-major. All points pin the experiment
    // seed: base and gated must see the same packet arrival stream for
    // the saving to isolate the shutdown effect.
    let mut points = Vec::new();
    for &arch in &archs {
        points.push(SimPoint::new(format!("base {arch} @ {rate}"), EXPERIMENT_SEED, move |s| {
            let w = UniformRandom::new(rate, 5, s).with_payload(PayloadProfile::dense(4));
            run_arch(arch, false, Box::new(w), sim_cfg)
        }));
    }
    for &frac in &fractions {
        for &arch in &archs {
            points.push(SimPoint::new(
                format!("gated {arch} @ {rate} ({:.0}% short)", frac * 100.0),
                EXPERIMENT_SEED,
                move |s| {
                    let w = UniformRandom::new(rate, 5, s)
                        .with_payload(PayloadProfile::with_short_fraction(4, frac));
                    run_arch(arch, true, Box::new(w), sim_cfg)
                },
            ));
        }
    }
    let batch = Runner::from_env().run(points);
    let power: Vec<f64> = batch.outcomes.iter().map(|o| o.result.avg_power_w).collect();
    let (bases, gated) = power.split_at(archs.len());

    let mut groups = Vec::new();
    for (fi, &frac) in fractions.iter().enumerate() {
        let values = (0..archs.len())
            .map(|ai| (1.0 - gated[fi * archs.len() + ai] / bases[ai]) * 100.0)
            .collect();
        groups.push((format!("{:.0}% short", frac * 100.0), values));
    }
    BarFigure {
        id: "fig13b".into(),
        title: "Power saving from layer shutdown (uniform random)".into(),
        group_label: "short flits".into(),
        bar_labels: archs.iter().map(|a| a.name().to_string()).collect(),
        groups,
        unit: "% saving".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::{quick_sim_config, sweep_ur};

    /// Headline power ordering at UR (paper §4.2.2): 3DM-E and 3DM are
    /// the cheapest; 3DB is cheaper than 2DB per network (fewer hops)
    /// but worse per flit.
    #[test]
    fn fig12a_power_ordering() {
        let sweep = sweep_ur(&[0.10], 0.0, quick_sim_config());
        let fig = fig12a(&sweep);
        let p = |a: &str| fig.series.iter().find(|s| s.label == a).unwrap().points[0].y;
        assert!(p("3DM") < p("2DB"), "3DM {} vs 2DB {}", p("3DM"), p("2DB"));
        assert!(p("3DM-E") < p("2DB"));
        assert!(p("3DM") < p("3DB"));
        // 2DB is the most power-hungry of the four (paper: 3DM saves 22%
        // over 2DB and 15% over 3DB ⇒ 3DB below 2DB).
        assert!(p("3DB") < p("2DB"));
    }

    /// Fig. 12(d): 3DM-E has the best PDP, 2DB the worst.
    #[test]
    fn fig12d_pdp_extremes() {
        let sweep = sweep_ur(&[0.10], 0.0, quick_sim_config());
        let fig = fig12d(&sweep);
        let v = |a: &str| fig.series.iter().find(|s| s.label == a).unwrap().points[0].y;
        assert!((v("2DB") - 1.0).abs() < 1e-9, "2DB is the normalisation base");
        for arch in ["3DB", "3DM", "3DM-E"] {
            assert!(v(arch) < 1.0, "{arch}: {}", v(arch));
        }
        assert!(v("3DM-E") <= v("3DM"));
    }

    /// Fig. 13(b): ~36 % saving at 50 % short flits, about half that at
    /// 25 % (paper §4.2.2).
    #[test]
    fn fig13b_shutdown_savings() {
        let fig = fig13b(0.10, quick_sim_config());
        for arch in ["2DB", "3DM", "3DM-E"] {
            let s50 = fig.value("50% short", arch).unwrap();
            let s25 = fig.value("25% short", arch).unwrap();
            // Lower edge calibrated against the vendored deterministic
            // RNG stream (3DM lands at ~24.8% under the quick config).
            assert!((23.0..=45.0).contains(&s50), "{arch} @50%: {s50:.1}%");
            assert!(s25 > 0.4 * s50 && s25 < 0.65 * s50, "{arch}: 25% {s25:.1} vs 50% {s50:.1}");
        }
    }
}
