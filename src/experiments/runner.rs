//! Parallel experiment runner: fans independent simulation points out
//! across a scoped worker pool and returns results in input order.
//!
//! Every MIRA exhibit sweeps independent (architecture × rate ×
//! workload) points, which are embarrassingly parallel. The runner
//! executes a list of [`SimPoint`]s on `std::thread::scope` workers —
//! pool size from [`std::thread::available_parallelism`], overridable
//! with the `MIRA_JOBS` environment variable — and guarantees:
//!
//! - **Input order**: outcomes come back in the order points were
//!   submitted, regardless of which worker finished first.
//! - **Determinism**: each point carries its own RNG seed, fixed at
//!   submission time. Seeds are derived from `(EXPERIMENT_SEED, index)`
//!   via [`derive_seed`], where the index identifies the *logical
//!   workload*, not the raw point position: points that replay the same
//!   workload on different architectures (the paper's paired-comparison
//!   methodology — e.g. 2DB vs 3DM-NC at the same injection rate) share
//!   a seed. Because a point's result depends only on its closure and
//!   seed, reports are bit-identical for any worker count or schedule.
//! - **Observability**: per-point wall-clock and cycle counts, an
//!   optional progress line (done/total, ETA) on stderr, and a
//!   machine-readable [`RunSummary`] for the benches' `--json` output.

use std::io::IsTerminal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mira_noc::stats::{LatencyHistogram, LatencyStats};
use mira_noc::telemetry::StallCounters;
use mira_obs::ledger::{self, LedgerEntry};
use mira_obs::provenance::Provenance;
use mira_obs::registry::{Counter, Histogram, ARENA_LIVE_PEAK, ROUTER_BUFFER_PEAK};
use serde::Serialize;

use crate::experiments::common::{RunResult, EXPERIMENT_SEED};

/// Points completed by runner batches in this process.
static POINTS_TOTAL: Counter =
    Counter::new("mira_runner_points_total", "Simulation points completed by the runner");
/// Simulated cycles completed by runner batches in this process.
static CYCLES_TOTAL: Counter =
    Counter::new("mira_runner_cycles_total", "Simulated cycles completed by the runner");
/// Per-point wall-time distribution.
static POINT_WALL_MS: Histogram =
    Histogram::new("mira_runner_point_wall_ms", "Per-point wall time on its worker, ms");
/// Per-point queue-wait distribution (batch start to claim).
static QUEUE_WAIT_MS: Histogram = Histogram::new(
    "mira_runner_queue_wait_ms",
    "Per-point wait from batch start until a worker claimed it, ms",
);

/// Derives a per-point RNG seed from a base seed and a point index
/// (SplitMix64-style finalizer: well-spread seeds even for consecutive
/// indices, and stable across platforms and runs).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z =
        base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x6A09_E667_F3BC_C909);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One schedulable unit of work: a labelled closure from seed to
/// [`RunResult`].
///
/// The closure must build its workload *inside* the call (so every
/// worker constructs an independent RNG from the stored seed) and must
/// not read any shared mutable state — that is what makes the batch
/// schedule-independent.
pub struct SimPoint {
    label: String,
    seed: u64,
    run: Box<dyn Fn(u64) -> RunResult + Send + Sync>,
}

impl std::fmt::Debug for SimPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPoint")
            .field("label", &self.label)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl SimPoint {
    /// Creates a point with an explicit seed (use [`derive_seed`] —
    /// or [`SimPoint::derived`] — unless points must share a workload).
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl Fn(u64) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        SimPoint { label: label.into(), seed, run: Box::new(run) }
    }

    /// Creates a point seeded by `derive_seed(EXPERIMENT_SEED, index)`.
    pub fn derived(
        label: impl Into<String>,
        index: u64,
        run: impl Fn(u64) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        Self::new(label, derive_seed(EXPERIMENT_SEED, index), run)
    }

    /// The point's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The RNG seed the closure will receive.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One completed point: the simulation result plus its timing.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Label copied from the [`SimPoint`].
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// The simulation result.
    pub result: RunResult,
    /// Wall-clock time this point took on its worker.
    pub wall: Duration,
    /// Time from batch start until a worker claimed this point (queue
    /// wait: how long the point sat behind others).
    pub queue_wait: Duration,
}

/// Everything a batch returns: per-point outcomes in input order plus
/// the aggregate summary.
#[derive(Debug, Clone)]
pub struct RunBatch {
    /// Outcomes, index-aligned with the submitted points.
    pub outcomes: Vec<PointOutcome>,
    /// Aggregate timing and statistics over the batch.
    pub summary: RunSummary,
}

impl RunBatch {
    /// Strips timing and returns just the simulation results, in input
    /// order.
    pub fn into_results(self) -> Vec<RunResult> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }
}

/// Machine-readable summary of one batch (emitted under `"runner"` in
/// the benches' `--json` output).
///
/// `Serialize` is implemented by hand (not derived) so the `windows`
/// time-series is omitted entirely when no point ran with metrics
/// windows enabled — the default-path JSON stays byte-identical to
/// pre-telemetry output.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Points executed.
    pub points: usize,
    /// Wall-clock for the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Sum of per-point wall-clocks, milliseconds (`busy_ms / wall_ms`
    /// ≈ achieved parallelism).
    pub busy_ms: f64,
    /// Total simulator cycles across all points.
    pub cycles_simulated: u64,
    /// Total measured packets ejected across all points.
    pub packets_ejected: u64,
    /// Simulation rate over the batch: thousands of simulated cycles
    /// per wall-clock second (worker-parallel, so this can exceed any
    /// single point's rate).
    pub kcycles_per_sec: f64,
    /// Simulation rate over the batch: millions of flits ejected in
    /// measurement windows per wall-clock second.
    pub mflits_per_sec: f64,
    /// How many points hit saturation (drain budget expired).
    pub saturated_points: usize,
    /// Mean latency over the merged per-point histograms, cycles.
    pub agg_latency_mean: f64,
    /// Median over the merged histograms (`None` for an empty batch).
    pub agg_latency_p50: Option<u64>,
    /// 95th percentile over the merged histograms.
    pub agg_latency_p95: Option<u64>,
    /// 99th percentile over the merged histograms.
    pub agg_latency_p99: Option<u64>,
    /// Mean per-point queue wait (batch start → claim), milliseconds.
    pub queue_wait_mean_ms: f64,
    /// Worst per-point queue wait, milliseconds.
    pub queue_wait_max_ms: f64,
    /// Load-imbalance ratio: busiest worker's busy time over the mean
    /// worker busy time (1.0 = perfectly balanced; the number ROADMAP
    /// item 2's sharded stepping will be judged against).
    pub imbalance: f64,
    /// Peak live flits in any point's arena (host memory watermark).
    pub peak_arena_flits: u64,
    /// Per-worker busy/idle accounting.
    pub workers: Vec<WorkerSummary>,
    /// Build provenance of this binary (git rev, rustc, profile).
    pub build: Provenance,
    /// Per-point label, seed, timing and headline stats.
    pub point_details: Vec<PointSummary>,
    /// Windowed-metrics time series aggregated across points, empty
    /// unless points ran with `TelemetryConfig::metrics_window` set.
    pub windows: Vec<WindowAggregate>,
}

/// One worker's share of a batch.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerSummary {
    /// Worker index within the pool.
    pub worker: usize,
    /// Points this worker executed.
    pub points: usize,
    /// Time spent inside point closures, milliseconds.
    pub busy_ms: f64,
    /// Batch wall time minus busy time, milliseconds (startup, queue
    /// polling, and tail idling after the queue drained).
    pub idle_ms: f64,
}

/// One metrics window aggregated over every point that produced it
/// (grouped by window index).
#[derive(Debug, Clone, Serialize)]
pub struct WindowAggregate {
    /// Window index (windows with the same index across points are
    /// merged).
    pub index: u64,
    /// First cycle covered (from the first contributing point).
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Points contributing to this window.
    pub points: usize,
    /// Mean per-router buffer occupancy (flits), averaged over points.
    pub occupancy_mean: f64,
    /// Stall cycles summed over all routers of all contributing points.
    pub stalls: StallCounters,
}

/// Groups per-point metrics windows by index into batch-level
/// aggregates.
fn aggregate_windows(outcomes: &[PointOutcome]) -> Vec<WindowAggregate> {
    let mut aggs: Vec<WindowAggregate> = Vec::new();
    for o in outcomes {
        for w in &o.result.report.windows {
            let idx = w.index as usize;
            if aggs.len() <= idx {
                let mut next = aggs.len() as u64;
                aggs.resize_with(idx + 1, || {
                    let a = WindowAggregate {
                        index: next,
                        start_cycle: w.start_cycle,
                        end_cycle: w.end_cycle,
                        points: 0,
                        occupancy_mean: 0.0,
                        stalls: StallCounters::new(),
                    };
                    next += 1;
                    a
                });
            }
            let agg = &mut aggs[idx];
            agg.index = w.index;
            if agg.points == 0 {
                agg.start_cycle = w.start_cycle;
                agg.end_cycle = w.end_cycle;
            }
            agg.points += 1;
            agg.occupancy_mean += w.occupancy_mean();
            agg.stalls.merge(&w.stall_total());
        }
    }
    for agg in &mut aggs {
        if agg.points > 0 {
            agg.occupancy_mean /= agg.points as f64;
        }
    }
    aggs
}

impl Serialize for RunSummary {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("jobs".to_string(), self.jobs.to_value()),
            ("points".to_string(), self.points.to_value()),
            ("wall_ms".to_string(), self.wall_ms.to_value()),
            ("busy_ms".to_string(), self.busy_ms.to_value()),
            ("cycles_simulated".to_string(), self.cycles_simulated.to_value()),
            ("packets_ejected".to_string(), self.packets_ejected.to_value()),
            ("kcycles_per_sec".to_string(), self.kcycles_per_sec.to_value()),
            ("mflits_per_sec".to_string(), self.mflits_per_sec.to_value()),
            ("saturated_points".to_string(), self.saturated_points.to_value()),
            ("agg_latency_mean".to_string(), self.agg_latency_mean.to_value()),
            ("agg_latency_p50".to_string(), self.agg_latency_p50.to_value()),
            ("agg_latency_p95".to_string(), self.agg_latency_p95.to_value()),
            ("agg_latency_p99".to_string(), self.agg_latency_p99.to_value()),
            ("queue_wait_mean_ms".to_string(), self.queue_wait_mean_ms.to_value()),
            ("queue_wait_max_ms".to_string(), self.queue_wait_max_ms.to_value()),
            ("imbalance".to_string(), self.imbalance.to_value()),
            ("peak_arena_flits".to_string(), self.peak_arena_flits.to_value()),
            ("workers".to_string(), self.workers.to_value()),
            ("build".to_string(), self.build.to_value()),
            ("point_details".to_string(), self.point_details.to_value()),
        ];
        if !self.windows.is_empty() {
            fields.push(("windows".to_string(), self.windows.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Per-point entry of a [`RunSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct PointSummary {
    /// Point label.
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// Wall-clock on its worker, milliseconds.
    pub wall_ms: f64,
    /// Cycles the simulator ran (all phases).
    pub cycles: u64,
    /// Mean measured latency, cycles.
    pub avg_latency: f64,
    /// Whether the point saturated.
    pub saturated: bool,
    /// Simulation rate of this point: thousands of simulated cycles per
    /// wall-clock second on its worker.
    pub kcycles_per_sec: f64,
    /// Simulation rate of this point: millions of flits ejected in the
    /// measurement window per wall-clock second.
    pub mflits_per_sec: f64,
    /// Wait from batch start until a worker claimed this point, ms.
    pub queue_wait_ms: f64,
    /// Peak live flits in this point's arena.
    pub arena_peak_flits: u64,
}

/// `numerator / seconds`, zero when the denominator rounds to zero (a
/// degenerate timer, not a fast simulator).
fn per_sec(numerator: f64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        numerator / seconds
    } else {
        0.0
    }
}

impl RunSummary {
    /// Builds the summary for a finished batch. Aggregate latency is
    /// computed by *merging* the per-point statistics and histograms
    /// ([`LatencyStats::merge`], [`LatencyHistogram::merge`]) — the
    /// same numbers a single serial pass over all packets would give.
    fn new(
        jobs: usize,
        wall: Duration,
        outcomes: &[PointOutcome],
        worker_stats: &[(usize, Duration)],
    ) -> Self {
        let mut merged_stats = LatencyStats::new();
        let mut merged_hist = LatencyHistogram::new();
        for o in outcomes {
            merged_stats.merge(&o.result.report.latency());
            merged_hist.merge(&o.result.report.histogram);
        }
        let wall_s = wall.as_secs_f64();
        let total_cycles: u64 = outcomes.iter().map(|o| o.result.report.cycles_simulated).sum();
        let total_flits: u64 =
            outcomes.iter().map(|o| o.result.report.counters.flits_ejected).sum();
        let workers: Vec<WorkerSummary> = worker_stats
            .iter()
            .enumerate()
            .map(|(w, &(points, busy))| {
                let busy_ms = busy.as_secs_f64() * 1e3;
                WorkerSummary {
                    worker: w,
                    points,
                    busy_ms,
                    idle_ms: (wall.as_secs_f64() * 1e3 - busy_ms).max(0.0),
                }
            })
            .collect();
        let imbalance = if workers.is_empty() {
            1.0
        } else {
            let mean_busy = workers.iter().map(|w| w.busy_ms).sum::<f64>() / workers.len() as f64;
            let max_busy = workers.iter().map(|w| w.busy_ms).fold(0.0, f64::max);
            if mean_busy > 0.0 {
                max_busy / mean_busy
            } else {
                1.0
            }
        };
        RunSummary {
            jobs,
            points: outcomes.len(),
            wall_ms: wall.as_secs_f64() * 1e3,
            busy_ms: outcomes.iter().map(|o| o.wall.as_secs_f64() * 1e3).sum(),
            cycles_simulated: total_cycles,
            packets_ejected: outcomes.iter().map(|o| o.result.report.packets_ejected).sum(),
            kcycles_per_sec: per_sec(total_cycles as f64 / 1e3, wall_s),
            mflits_per_sec: per_sec(total_flits as f64 / 1e6, wall_s),
            saturated_points: outcomes.iter().filter(|o| o.result.report.saturated).count(),
            agg_latency_mean: merged_stats.mean(),
            agg_latency_p50: merged_hist.p50(),
            agg_latency_p95: merged_hist.p95(),
            agg_latency_p99: merged_hist.p99(),
            queue_wait_mean_ms: if outcomes.is_empty() {
                0.0
            } else {
                outcomes.iter().map(|o| o.queue_wait.as_secs_f64() * 1e3).sum::<f64>()
                    / outcomes.len() as f64
            },
            queue_wait_max_ms: outcomes
                .iter()
                .map(|o| o.queue_wait.as_secs_f64() * 1e3)
                .fold(0.0, f64::max),
            imbalance,
            peak_arena_flits: outcomes.iter().map(|o| o.result.arena_peak_flits).max().unwrap_or(0),
            workers,
            build: Provenance::current(),
            point_details: outcomes
                .iter()
                .map(|o| PointSummary {
                    label: o.label.clone(),
                    seed: o.seed,
                    wall_ms: o.wall.as_secs_f64() * 1e3,
                    cycles: o.result.report.cycles_simulated,
                    avg_latency: o.result.report.avg_latency,
                    saturated: o.result.report.saturated,
                    kcycles_per_sec: per_sec(
                        o.result.report.cycles_simulated as f64 / 1e3,
                        o.wall.as_secs_f64(),
                    ),
                    mflits_per_sec: per_sec(
                        o.result.report.counters.flits_ejected as f64 / 1e6,
                        o.wall.as_secs_f64(),
                    ),
                    queue_wait_ms: o.queue_wait.as_secs_f64() * 1e3,
                    arena_peak_flits: o.result.arena_peak_flits,
                })
                .collect(),
            windows: aggregate_windows(outcomes),
        }
    }

    /// One-line human rendering (printed to stderr by the benches in
    /// text mode).
    pub fn one_line(&self) -> String {
        format!(
            "{} points on {} workers: {:.2} s wall, {:.2} s busy, {} cycles \
             ({:.0} Kcyc/s, {:.2} Mflit/s), {} saturated",
            self.points,
            self.jobs,
            self.wall_ms / 1e3,
            self.busy_ms / 1e3,
            self.cycles_simulated,
            self.kcycles_per_sec,
            self.mflits_per_sec,
            self.saturated_points,
        )
    }
}

/// One machine-readable progress record, emitted as a JSON line on
/// stderr after each point completes when [`Runner::progress_json`] is
/// on (the `--progress-json` bench flag). Lines are self-contained so a
/// monitor can tail them without tracking state.
#[derive(Debug, Clone, Serialize)]
pub struct ProgressEvent {
    /// Points finished so far (including this one).
    pub done: usize,
    /// Points in the batch.
    pub total: usize,
    /// Label of the point that just finished.
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// Wall-clock the point took on its worker, milliseconds.
    pub wall_ms: f64,
    /// Cycles the point simulated.
    pub cycles: u64,
    /// The point's simulation rate, thousands of cycles per second.
    pub kcycles_per_sec: f64,
    /// Whether the point saturated.
    pub saturated: bool,
}

impl ProgressEvent {
    /// The event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("progress event serializes")
    }
}

/// The worker pool configuration.
#[derive(Debug, Clone)]
pub struct Runner {
    jobs: usize,
    progress: bool,
    progress_json: bool,
    ledger_path: Option<PathBuf>,
    exhibit: Option<String>,
}

impl Runner {
    /// Pool sized from the environment: `MIRA_JOBS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    /// Progress reporting defaults to on when stderr is a terminal.
    pub fn from_env() -> Self {
        let jobs = std::env::var("MIRA_JOBS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Runner {
            jobs,
            progress: std::io::stderr().is_terminal(),
            progress_json: false,
            ledger_path: None,
            exhibit: None,
        }
    }

    /// Pool with an explicit worker count (progress off — this is the
    /// constructor tests use).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            progress: false,
            progress_json: false,
            ledger_path: None,
            exhibit: None,
        }
    }

    /// Enables or disables the stderr progress line.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Enables or disables the machine-readable JSONL progress stream
    /// on stderr (one [`ProgressEvent`] line per completed point,
    /// alongside — not replacing — the human progress line).
    pub fn progress_json(mut self, on: bool) -> Self {
        self.progress_json = on;
        self
    }

    /// Overrides the run-ledger path (default:
    /// [`mira_obs::ledger::default_path`]). Only consulted when
    /// observability is enabled.
    pub fn ledger_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.ledger_path = Some(path.into());
        self
    }

    /// Names the exhibit for ledger entries (default: the binary's file
    /// stem).
    pub fn exhibit(mut self, name: impl Into<String>) -> Self {
        self.exhibit = Some(name.into());
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point and returns outcomes in input order.
    ///
    /// Workers pull the next unclaimed index from a shared atomic
    /// counter; each outcome lands in its own slot, so no result
    /// depends on completion order.
    pub fn run(&self, points: Vec<SimPoint>) -> RunBatch {
        let started = Instant::now();
        let total = points.len();
        let workers = self.jobs.min(total).max(1);
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PointOutcome>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        // Per-worker (points run, busy time) — each worker owns one slot.
        let worker_stats: Vec<Mutex<(usize, Duration)>> =
            (0..workers).map(|_| Mutex::new((0, Duration::ZERO))).collect();
        // Hashed before the run so a crashing point can't change the
        // batch's identity in the ledger.
        let config_hash =
            ledger::config_hash(&self.exhibit_name(), points.iter().map(|p| (p.label(), p.seed())));

        std::thread::scope(|scope| {
            for worker_stat in &worker_stats {
                let next = &next;
                let done = &done;
                let slots = &slots;
                let points = &points;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let p = &points[i];
                    let queue_wait = started.elapsed();
                    let t0 = Instant::now();
                    let result = (p.run)(p.seed);
                    let wall = t0.elapsed();
                    let cycles = result.report.cycles_simulated;
                    let saturated = result.report.saturated;
                    if mira_obs::enabled() {
                        POINTS_TOTAL.inc(1);
                        CYCLES_TOTAL.inc(cycles);
                        POINT_WALL_MS.observe(wall.as_millis() as u64);
                        QUEUE_WAIT_MS.observe(queue_wait.as_millis() as u64);
                        ARENA_LIVE_PEAK.set_max(result.arena_peak_flits);
                        ROUTER_BUFFER_PEAK.set_max(result.buffer_peak_flits);
                    }
                    *slots[i].lock().expect("outcome slot") = Some(PointOutcome {
                        label: p.label.clone(),
                        seed: p.seed,
                        result,
                        wall,
                        queue_wait,
                    });
                    {
                        let mut stat = worker_stat.lock().expect("worker stat");
                        stat.0 += 1;
                        stat.1 += wall;
                    }
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if self.progress {
                        let elapsed = started.elapsed();
                        let eta = elapsed.mul_f64((total - finished) as f64 / finished as f64);
                        let rate = per_sec(cycles as f64 / 1e3, wall.as_secs_f64());
                        eprintln!(
                            "[runner] {finished}/{total} done, {elapsed:.1?} elapsed, ~{eta:.1?} left (last: {} in {wall:.1?}, {rate:.0} Kcyc/s)",
                            p.label,
                        );
                    }
                    if self.progress_json {
                        let event = ProgressEvent {
                            done: finished,
                            total,
                            label: p.label.clone(),
                            seed: p.seed,
                            wall_ms: wall.as_secs_f64() * 1e3,
                            cycles,
                            kcycles_per_sec: per_sec(cycles as f64 / 1e3, wall.as_secs_f64()),
                            saturated,
                        };
                        eprintln!("{}", event.to_jsonl());
                    }
                });
            }
        });

        let outcomes: Vec<PointOutcome> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock").expect("every point ran"))
            .collect();
        let worker_stats: Vec<(usize, Duration)> =
            worker_stats.into_iter().map(|m| m.into_inner().expect("worker stat")).collect();
        let summary = RunSummary::new(workers, started.elapsed(), &outcomes, &worker_stats);
        if mira_obs::enabled() && !outcomes.is_empty() {
            self.append_ledger(config_hash, &outcomes, &summary);
        }
        RunBatch { outcomes, summary }
    }

    /// The exhibit name for ledger entries: the explicit override, or
    /// the running binary's file stem.
    fn exhibit_name(&self) -> String {
        if let Some(name) = &self.exhibit {
            return name.clone();
        }
        std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// Appends one batch entry to the durable run ledger (and the
    /// in-process session log). IO failure warns on stderr instead of
    /// failing the batch — the ledger is observability, not results.
    fn append_ledger(&self, config_hash: u64, outcomes: &[PointOutcome], summary: &RunSummary) {
        let build = Provenance::current();
        let entry = LedgerEntry {
            ts_ms: ledger::unix_millis(),
            exhibit: self.exhibit_name(),
            config_hash: ledger::hash_hex(config_hash),
            seed: outcomes[0].seed,
            git_rev: build.git_rev,
            profile: build.profile,
            rustc: build.rustc,
            points: summary.points,
            jobs: summary.jobs,
            wall_ms: summary.wall_ms,
            cycles_simulated: summary.cycles_simulated,
            kcycles_per_sec: summary.kcycles_per_sec,
            mflits_per_sec: summary.mflits_per_sec,
            saturated_points: summary.saturated_points,
            peak_arena_flits: summary.peak_arena_flits,
        };
        let path = self.ledger_path.clone().unwrap_or_else(ledger::default_path);
        if let Err(e) = ledger::append(&path, &entry) {
            eprintln!("[runner] warning: could not append run ledger {}: {e}", path.display());
        }
        ledger::record_session(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use crate::experiments::common::{quick_sim_config, run_arch};
    use mira_noc::traffic::UniformRandom;

    fn ur_point(label: &str, arch: Arch, rate: f64, seed: u64) -> SimPoint {
        SimPoint::new(label, seed, move |s| {
            let cfg = quick_sim_config();
            run_arch(arch, false, Box::new(UniformRandom::new(rate, 5, s)), cfg)
        })
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        // Pinned values: the derivation must never change, or every
        // calibrated experiment shifts.
        assert_eq!(derive_seed(EXPERIMENT_SEED, 0), derive_seed(EXPERIMENT_SEED, 0));
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(EXPERIMENT_SEED, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "derived seeds must not collide");
        // Different bases give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn results_come_back_in_input_order() {
        let points = vec![
            ur_point("a", Arch::TwoDB, 0.05, 1),
            ur_point("b", Arch::ThreeDM, 0.05, 2),
            ur_point("c", Arch::ThreeDME, 0.05, 3),
        ];
        let batch = Runner::with_jobs(3).run(points);
        let labels: Vec<&str> = batch.outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(batch.outcomes[0].result.arch, Arch::TwoDB);
        assert_eq!(batch.outcomes[2].result.arch, Arch::ThreeDME);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = Runner::with_jobs(4).run(Vec::new());
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.summary.points, 0);
        assert_eq!(batch.summary.agg_latency_p50, None);
    }

    #[test]
    fn summary_aggregates_points() {
        let points = vec![
            ur_point("x", Arch::TwoDB, 0.05, EXPERIMENT_SEED),
            ur_point("y", Arch::TwoDB, 0.05, EXPERIMENT_SEED),
        ];
        let batch = Runner::with_jobs(2).run(points);
        let s = &batch.summary;
        assert_eq!(s.points, 2);
        assert_eq!(s.jobs, 2);
        assert_eq!(
            s.packets_ejected,
            batch.outcomes.iter().map(|o| o.result.report.packets_ejected).sum::<u64>()
        );
        // Identical seeds ⇒ identical runs ⇒ the merged mean equals the
        // per-point mean.
        let per_point = batch.outcomes[0].result.report.avg_latency;
        assert!((s.agg_latency_mean - per_point).abs() < 1e-9);
        assert!(s.wall_ms > 0.0 && s.busy_ms > 0.0);
        assert_eq!(s.point_details.len(), 2);
        assert_eq!(s.point_details[0].label, "x");
        // Self-metrics: the sim rate ties out against cycles and wall.
        assert!(s.kcycles_per_sec > 0.0);
        let expected = s.cycles_simulated as f64 / 1e3 / (s.wall_ms / 1e3);
        assert!((s.kcycles_per_sec - expected).abs() < 1e-6 * expected.max(1.0));
        assert!(s.mflits_per_sec > 0.0);
        for d in &s.point_details {
            assert!(d.kcycles_per_sec > 0.0, "{}", d.label);
        }
        assert!(s.one_line().contains("Kcyc/s"));
    }

    #[test]
    fn jobs_env_override_parses() {
        // Only the explicit constructor is exercised here — reading
        // MIRA_JOBS in-process would race with parallel test threads.
        assert_eq!(Runner::with_jobs(0).jobs(), 1, "zero clamps to one worker");
        assert_eq!(Runner::with_jobs(7).jobs(), 7);
    }
}
