//! Crash-safe parallel experiment runner: fans independent simulation
//! points out across a fault-isolated worker pool and returns results —
//! or typed failures — in input order.
//!
//! Every MIRA exhibit sweeps independent (architecture × rate ×
//! workload) points, which are embarrassingly parallel. The runner
//! executes a list of [`SimPoint`]s on detached worker threads — pool
//! size from [`std::thread::available_parallelism`], overridable with
//! the `MIRA_JOBS` environment variable — and guarantees:
//!
//! - **Input order**: outcomes come back in the order points were
//!   submitted, regardless of which worker finished first.
//! - **Determinism**: each point carries its own RNG seed, fixed at
//!   submission time. Seeds are derived from `(EXPERIMENT_SEED, index)`
//!   via [`derive_seed`], where the index identifies the *logical
//!   workload*, not the raw point position: points that replay the same
//!   workload on different architectures (the paper's paired-comparison
//!   methodology — e.g. 2DB vs 3DM-NC at the same injection rate) share
//!   a seed. Because a point's result depends only on its closure and
//!   seed, reports are bit-identical for any worker count or schedule.
//! - **Fault isolation**: every point runs under
//!   [`std::panic::catch_unwind`]; a panicking point becomes a typed
//!   [`PointFailure`] instead of tearing down the batch, and every
//!   other point's result stays bit-identical to a clean run.
//!   [`Runner::try_run`] returns one `Result` per point;
//!   [`Runner::run`] keeps the historical all-success contract and
//!   panics with an itemized message if any point failed.
//! - **Retry and watchdog**: failed attempts are retried with the
//!   *same seed* up to a bounded budget (`MIRA_POINT_RETRIES`), with
//!   exponential backoff only for host-resource errors (disk full,
//!   allocation failure). A configurable watchdog
//!   (`MIRA_POINT_TIMEOUT`) marks runaway points
//!   [`FailureKind::Timeout`] and replaces their stuck worker so the
//!   rest of the batch keeps moving.
//! - **Checkpointed resume**: with a checkpoint directory configured
//!   (`MIRA_CHECKPOINT_DIR`), every completed point is flushed to
//!   `results/checkpoints/<exhibit>-<hash>.jsonl` as it finishes; a
//!   resumed batch (`MIRA_RESUME=1`) replays verified entries and runs
//!   only the missing points, bit-identical to an uninterrupted run.
//! - **Observability**: per-point wall-clock and cycle counts, an
//!   optional progress line (done/total, ETA) on stderr, and a
//!   machine-readable [`RunSummary`] for the benches' `--json` output,
//!   now including a `failed_points` itemization.

use std::io::IsTerminal;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mira_noc::anomaly::AnomalyAbort;
use mira_noc::stats::{LatencyHistogram, LatencyStats};
use mira_noc::telemetry::StallCounters;
use mira_obs::checkpoint::{self, CheckpointEntry, CheckpointWriter};
use mira_obs::ledger::{self, LedgerEntry};
use mira_obs::provenance::Provenance;
use mira_obs::registry::{Counter, Histogram, ARENA_LIVE_PEAK, ROUTER_BUFFER_PEAK};
use serde::{Deserialize, Serialize};

use crate::error::HostError;
use crate::experiments::common::{RunResult, EXPERIMENT_SEED};

/// Points completed by runner batches in this process.
static POINTS_TOTAL: Counter =
    Counter::new("mira_runner_points_total", "Simulation points completed by the runner");
/// Simulated cycles completed by runner batches in this process.
static CYCLES_TOTAL: Counter =
    Counter::new("mira_runner_cycles_total", "Simulated cycles completed by the runner");
/// Per-point wall-time distribution.
static POINT_WALL_MS: Histogram =
    Histogram::new("mira_runner_point_wall_ms", "Per-point wall time on its worker, ms");
/// Per-point queue-wait distribution (batch start to claim).
static QUEUE_WAIT_MS: Histogram = Histogram::new(
    "mira_runner_queue_wait_ms",
    "Per-point wait from batch start until a worker claimed it, ms",
);
/// Points that exhausted their retry budget and failed.
static POINT_FAILURES_TOTAL: Counter = Counter::new(
    "mira_runner_point_failures_total",
    "Points recorded as failed (panic, timeout or fail-fast skip)",
);
/// Retried point attempts.
static POINT_RETRIES_TOTAL: Counter = Counter::new(
    "mira_runner_point_retries_total",
    "Point attempts retried after a panicking attempt",
);
/// Points the watchdog marked timed out.
static POINT_TIMEOUTS_TOTAL: Counter = Counter::new(
    "mira_runner_point_timeouts_total",
    "Points marked failed by the point-timeout watchdog",
);
/// Points replayed from sweep checkpoints instead of simulated.
static POINTS_RESUMED_TOTAL: Counter = Counter::new(
    "mira_runner_points_resumed_total",
    "Points replayed from a sweep checkpoint on resume",
);
/// Anomaly-detector firings across runner points (windowed detections
/// on completed points plus triggered black-box halts).
static ANOMALIES_TOTAL: Counter = Counter::new(
    "mira_runner_anomalies_total",
    "Anomaly-detector firings observed across runner points",
);

/// Derives a per-point RNG seed from a base seed and a point index
/// (SplitMix64-style finalizer: well-spread seeds even for consecutive
/// indices, and stable across platforms and runs).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z =
        base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x6A09_E667_F3BC_C909);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One schedulable unit of work: a labelled closure from seed to
/// [`RunResult`].
///
/// The closure must build its workload *inside* the call (so every
/// worker constructs an independent RNG from the stored seed) and must
/// not read any shared mutable state — that is what makes the batch
/// schedule-independent, retries bit-identical, and a caught panic
/// safe to retry (no partial state survives an unwound attempt).
pub struct SimPoint {
    label: String,
    seed: u64,
    run: Box<dyn Fn(u64) -> RunResult + Send + Sync>,
}

impl std::fmt::Debug for SimPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPoint")
            .field("label", &self.label)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl SimPoint {
    /// Creates a point with an explicit seed (use [`derive_seed`] —
    /// or [`SimPoint::derived`] — unless points must share a workload).
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl Fn(u64) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        SimPoint { label: label.into(), seed, run: Box::new(run) }
    }

    /// Creates a point seeded by `derive_seed(EXPERIMENT_SEED, index)`.
    pub fn derived(
        label: impl Into<String>,
        index: u64,
        run: impl Fn(u64) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        Self::new(label, derive_seed(EXPERIMENT_SEED, index), run)
    }

    /// The point's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The RNG seed the closure will receive.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One completed point: the simulation result plus its timing.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Label copied from the [`SimPoint`].
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// The simulation result.
    pub result: RunResult,
    /// Wall-clock time this point took on its worker, across all
    /// attempts (zero for resumed points).
    pub wall: Duration,
    /// Time from batch start until a worker claimed this point (queue
    /// wait: how long the point sat behind others).
    pub queue_wait: Duration,
    /// Attempts the point needed (1 = first try; 0 = replayed from a
    /// checkpoint, never executed in this process).
    pub attempts: u32,
    /// Whether the result was replayed from a sweep checkpoint instead
    /// of simulated in this batch.
    pub resumed: bool,
}

/// Why a point did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// The point's closure panicked on its final attempt.
    Panic {
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The point exceeded the configured watchdog timeout.
    Timeout {
        /// The limit it exceeded.
        limit: Duration,
    },
    /// The point was never run: an earlier failure aborted the batch
    /// under the fail-fast policy.
    Skipped,
    /// A flight-recorder detector halted the simulation from inside the
    /// point (an in-simulator hang or invariant violation). Anomalies
    /// are deterministic — the same seed wedges the same way — so they
    /// are never retried, and the simulator's black-box dump is written
    /// out for `trace_tool blackbox` before the failure is recorded.
    Anomaly {
        /// Stable detector tag (`no_progress`, `starvation`, ...).
        detector: String,
        /// Simulator cycle the detector halted on.
        cycle: u64,
        /// Where the black-box dump landed (`None` when writing it
        /// failed; the failure stays typed either way).
        dump_path: Option<PathBuf>,
    },
}

impl FailureKind {
    /// Stable machine-readable tag (`panic` / `timeout` / `skipped` /
    /// `anomaly`).
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::Panic { .. } => "panic",
            FailureKind::Timeout { .. } => "timeout",
            FailureKind::Skipped => "skipped",
            FailureKind::Anomaly { .. } => "anomaly",
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            FailureKind::Panic { payload } => payload.clone(),
            FailureKind::Timeout { limit } => format!("exceeded point timeout {limit:?}"),
            FailureKind::Skipped => "skipped after an earlier failure (fail-fast)".to_string(),
            FailureKind::Anomaly { detector, cycle, dump_path } => match dump_path {
                Some(p) => format!(
                    "anomaly `{detector}` halted the run at cycle {cycle} (dump: {})",
                    p.display()
                ),
                None => format!("anomaly `{detector}` halted the run at cycle {cycle}"),
            },
        }
    }
}

/// One failed point: identity, cause, and how much was spent on it.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// Position of the point in the submitted batch.
    pub index: usize,
    /// Label copied from the [`SimPoint`].
    pub label: String,
    /// Seed the point ran (or would have run) with.
    pub seed: u64,
    /// What went wrong.
    pub kind: FailureKind,
    /// Attempts completed when the failure was recorded (1 for watchdog
    /// timeouts — the attempt in flight; 0 for fail-fast skips).
    pub attempts: u32,
    /// Wall-clock spent on the point across all attempts.
    pub wall: Duration,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {} `{}` (seed {}) ", self.index, self.label, self.seed)?;
        match &self.kind {
            FailureKind::Panic { payload } => write!(f, "panicked: {payload}")?,
            FailureKind::Timeout { limit } => write!(f, "timed out after {limit:?}")?,
            FailureKind::Skipped => write!(f, "skipped (fail-fast)")?,
            FailureKind::Anomaly { detector, cycle, dump_path } => {
                write!(f, "tripped anomaly detector `{detector}` at cycle {cycle}")?;
                if let Some(p) = dump_path {
                    write!(f, " (dump: {})", p.display())?;
                }
            }
        }
        if self.attempts > 1 {
            write!(f, " [{} attempts]", self.attempts)?;
        }
        Ok(())
    }
}

/// Everything a batch returns: per-point outcomes in input order plus
/// the aggregate summary.
#[derive(Debug, Clone)]
pub struct RunBatch {
    /// Outcomes, index-aligned with the submitted points.
    pub outcomes: Vec<PointOutcome>,
    /// Aggregate timing and statistics over the batch.
    pub summary: RunSummary,
}

impl RunBatch {
    /// Strips timing and returns just the simulation results, in input
    /// order.
    pub fn into_results(self) -> Vec<RunResult> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }
}

/// What [`Runner::try_run`] returns: one `Result` per submitted point,
/// in input order, plus the aggregate summary (which itemizes the
/// failures again under [`RunSummary::failed_points`]).
#[derive(Debug, Clone)]
pub struct TryRunBatch {
    exhibit: String,
    /// Per-point outcome or typed failure, index-aligned with the
    /// submitted points.
    pub outcomes: Vec<Result<PointOutcome, PointFailure>>,
    /// Aggregate timing and statistics over the batch.
    pub summary: RunSummary,
}

impl TryRunBatch {
    /// The failed points, in input order.
    pub fn failures(&self) -> impl Iterator<Item = &PointFailure> {
        self.outcomes.iter().filter_map(|r| r.as_ref().err())
    }

    /// Converts into the all-success [`RunBatch`], or a
    /// [`HostError::Batch`] itemizing every failed point.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::Batch`] when any point failed.
    pub fn into_complete(self) -> Result<RunBatch, HostError> {
        let points = self.outcomes.len();
        let failures: Vec<String> = self.failures().map(|f| f.to_string()).collect();
        if !failures.is_empty() {
            return Err(HostError::Batch { exhibit: self.exhibit, points, failures });
        }
        let outcomes = self
            .outcomes
            .into_iter()
            .map(|r| r.expect("no failures in a complete batch"))
            .collect();
        Ok(RunBatch { outcomes, summary: self.summary })
    }
}

/// Machine-readable summary of one batch (emitted under `"runner"` in
/// the benches' `--json` output).
///
/// `Serialize` is implemented by hand (not derived) so the `windows`
/// time-series, the `failed_points` itemization and the
/// `resumed_points`/`retried_points` counts are omitted entirely when
/// empty/zero — the default-path JSON stays byte-identical to
/// pre-crash-safety output.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Points submitted (successes plus failures).
    pub points: usize,
    /// Wall-clock for the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Sum of per-point wall-clocks, milliseconds (`busy_ms / wall_ms`
    /// ≈ achieved parallelism). Includes time spent on failed points.
    pub busy_ms: f64,
    /// Total simulator cycles across all completed points.
    pub cycles_simulated: u64,
    /// Total measured packets ejected across all completed points.
    pub packets_ejected: u64,
    /// Simulation rate over the batch: thousands of simulated cycles
    /// per wall-clock second (worker-parallel, so this can exceed any
    /// single point's rate).
    pub kcycles_per_sec: f64,
    /// Simulation rate over the batch: millions of flits ejected in
    /// measurement windows per wall-clock second.
    pub mflits_per_sec: f64,
    /// How many points hit saturation (drain budget expired).
    pub saturated_points: usize,
    /// Mean latency over the merged per-point histograms, cycles.
    pub agg_latency_mean: f64,
    /// Median over the merged histograms (`None` for an empty batch).
    pub agg_latency_p50: Option<u64>,
    /// 95th percentile over the merged histograms.
    pub agg_latency_p95: Option<u64>,
    /// 99th percentile over the merged histograms.
    pub agg_latency_p99: Option<u64>,
    /// Mean per-point queue wait (batch start → claim), milliseconds,
    /// over points executed in this batch (resumed points never queue).
    pub queue_wait_mean_ms: f64,
    /// Worst per-point queue wait, milliseconds.
    pub queue_wait_max_ms: f64,
    /// Load-imbalance ratio: busiest worker's busy time over the mean
    /// worker busy time (1.0 = perfectly balanced; the number ROADMAP
    /// item 2's sharded stepping will be judged against).
    pub imbalance: f64,
    /// Peak live flits in any point's arena (host memory watermark).
    pub peak_arena_flits: u64,
    /// Per-worker busy/idle accounting (replacement workers spawned by
    /// the watchdog append extra rows).
    pub workers: Vec<WorkerSummary>,
    /// Build provenance of this binary (git rev, rustc, profile).
    pub build: Provenance,
    /// Per-point label, seed, timing and headline stats (completed
    /// points only; failures are itemized in `failed_points`).
    pub point_details: Vec<PointSummary>,
    /// Failed points, in input order (empty on a clean batch).
    pub failed_points: Vec<FailureSummary>,
    /// Points replayed from a sweep checkpoint instead of simulated.
    pub resumed_points: usize,
    /// Points that needed more than one attempt (successes and
    /// failures).
    pub retried_points: usize,
    /// Windowed-metrics time series aggregated across points, empty
    /// unless points ran with `TelemetryConfig::metrics_window` set.
    pub windows: Vec<WindowAggregate>,
    /// Anomaly-detector firings across the batch: windowed detections
    /// counted on completed points plus triggered halts (one per
    /// [`FailureKind::Anomaly`] failure). Zero on a healthy batch.
    pub anomalies: u64,
    /// Detector names that fired at least once, sorted and
    /// deduplicated (empty when `anomalies` is zero).
    pub anomaly_kinds: Vec<String>,
}

/// One worker's share of a batch.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerSummary {
    /// Worker index within the pool.
    pub worker: usize,
    /// Points this worker executed (including attempts whose result
    /// lost a race with the watchdog).
    pub points: usize,
    /// Time spent inside point closures, milliseconds.
    pub busy_ms: f64,
    /// Batch wall time minus busy time, milliseconds (startup, queue
    /// polling, and tail idling after the queue drained).
    pub idle_ms: f64,
}

/// One failed point as serialized under `failed_points` in the batch
/// summary (and the benches' `--json` output).
#[derive(Debug, Clone, Serialize)]
pub struct FailureSummary {
    /// Position of the point in the submitted batch.
    pub index: usize,
    /// Point label.
    pub label: String,
    /// Seed the point ran (or would have run) with.
    pub seed: u64,
    /// Failure tag: `panic`, `timeout` or `skipped`.
    pub kind: String,
    /// Human-readable cause (panic payload, timeout limit, …).
    pub detail: String,
    /// Attempts completed when the failure was recorded.
    pub attempts: u32,
    /// Wall-clock spent on the point, milliseconds.
    pub wall_ms: f64,
}

impl FailureSummary {
    fn of(f: &PointFailure) -> Self {
        FailureSummary {
            index: f.index,
            label: f.label.clone(),
            seed: f.seed,
            kind: f.kind.name().to_string(),
            detail: f.kind.detail(),
            attempts: f.attempts,
            wall_ms: f.wall.as_secs_f64() * 1e3,
        }
    }
}

/// One metrics window aggregated over every point that produced it
/// (grouped by window index).
#[derive(Debug, Clone, Serialize)]
pub struct WindowAggregate {
    /// Window index (windows with the same index across points are
    /// merged).
    pub index: u64,
    /// First cycle covered (from the first contributing point).
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Points contributing to this window.
    pub points: usize,
    /// Mean per-router buffer occupancy (flits), averaged over points.
    pub occupancy_mean: f64,
    /// Stall cycles summed over all routers of all contributing points.
    pub stalls: StallCounters,
}

/// Groups per-point metrics windows by index into batch-level
/// aggregates.
fn aggregate_windows(outcomes: &[&PointOutcome]) -> Vec<WindowAggregate> {
    let mut aggs: Vec<WindowAggregate> = Vec::new();
    for o in outcomes {
        for w in &o.result.report.windows {
            let idx = w.index as usize;
            if aggs.len() <= idx {
                let mut next = aggs.len() as u64;
                aggs.resize_with(idx + 1, || {
                    let a = WindowAggregate {
                        index: next,
                        start_cycle: w.start_cycle,
                        end_cycle: w.end_cycle,
                        points: 0,
                        occupancy_mean: 0.0,
                        stalls: StallCounters::new(),
                    };
                    next += 1;
                    a
                });
            }
            let agg = &mut aggs[idx];
            agg.index = w.index;
            if agg.points == 0 {
                agg.start_cycle = w.start_cycle;
                agg.end_cycle = w.end_cycle;
            }
            agg.points += 1;
            agg.occupancy_mean += w.occupancy_mean();
            agg.stalls.merge(&w.stall_total());
        }
    }
    for agg in &mut aggs {
        if agg.points > 0 {
            agg.occupancy_mean /= agg.points as f64;
        }
    }
    aggs
}

impl Serialize for RunSummary {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("jobs".to_string(), self.jobs.to_value()),
            ("points".to_string(), self.points.to_value()),
            ("wall_ms".to_string(), self.wall_ms.to_value()),
            ("busy_ms".to_string(), self.busy_ms.to_value()),
            ("cycles_simulated".to_string(), self.cycles_simulated.to_value()),
            ("packets_ejected".to_string(), self.packets_ejected.to_value()),
            ("kcycles_per_sec".to_string(), self.kcycles_per_sec.to_value()),
            ("mflits_per_sec".to_string(), self.mflits_per_sec.to_value()),
            ("saturated_points".to_string(), self.saturated_points.to_value()),
            ("agg_latency_mean".to_string(), self.agg_latency_mean.to_value()),
            ("agg_latency_p50".to_string(), self.agg_latency_p50.to_value()),
            ("agg_latency_p95".to_string(), self.agg_latency_p95.to_value()),
            ("agg_latency_p99".to_string(), self.agg_latency_p99.to_value()),
            ("queue_wait_mean_ms".to_string(), self.queue_wait_mean_ms.to_value()),
            ("queue_wait_max_ms".to_string(), self.queue_wait_max_ms.to_value()),
            ("imbalance".to_string(), self.imbalance.to_value()),
            ("peak_arena_flits".to_string(), self.peak_arena_flits.to_value()),
            ("workers".to_string(), self.workers.to_value()),
            ("build".to_string(), self.build.to_value()),
            ("point_details".to_string(), self.point_details.to_value()),
        ];
        if !self.failed_points.is_empty() {
            fields.push(("failed_points".to_string(), self.failed_points.to_value()));
        }
        if self.resumed_points > 0 {
            fields.push(("resumed_points".to_string(), self.resumed_points.to_value()));
        }
        if self.retried_points > 0 {
            fields.push(("retried_points".to_string(), self.retried_points.to_value()));
        }
        if !self.windows.is_empty() {
            fields.push(("windows".to_string(), self.windows.to_value()));
        }
        if self.anomalies > 0 {
            fields.push(("anomalies".to_string(), self.anomalies.to_value()));
            fields.push(("anomaly_kinds".to_string(), self.anomaly_kinds.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Per-point entry of a [`RunSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct PointSummary {
    /// Point label.
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// Wall-clock on its worker, milliseconds.
    pub wall_ms: f64,
    /// Cycles the simulator ran (all phases).
    pub cycles: u64,
    /// Mean measured latency, cycles.
    pub avg_latency: f64,
    /// Whether the point saturated.
    pub saturated: bool,
    /// Simulation rate of this point: thousands of simulated cycles per
    /// wall-clock second on its worker.
    pub kcycles_per_sec: f64,
    /// Simulation rate of this point: millions of flits ejected in the
    /// measurement window per wall-clock second.
    pub mflits_per_sec: f64,
    /// Wait from batch start until a worker claimed this point, ms.
    pub queue_wait_ms: f64,
    /// Peak live flits in this point's arena.
    pub arena_peak_flits: u64,
}

/// `numerator / seconds`, zero when the denominator rounds to zero (a
/// degenerate timer, not a fast simulator).
fn per_sec(numerator: f64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        numerator / seconds
    } else {
        0.0
    }
}

impl RunSummary {
    /// Builds the summary for a finished batch. Aggregate latency is
    /// computed by *merging* the per-point statistics and histograms
    /// ([`LatencyStats::merge`], [`LatencyHistogram::merge`]) — the
    /// same numbers a single serial pass over all packets would give.
    /// Failed points contribute to `busy_ms` (their worker time was
    /// real) but to none of the simulation aggregates.
    fn new(
        jobs: usize,
        wall: Duration,
        outcomes: &[Result<PointOutcome, PointFailure>],
        worker_stats: &[(usize, Duration)],
    ) -> Self {
        let ok: Vec<&PointOutcome> = outcomes.iter().filter_map(|r| r.as_ref().ok()).collect();
        let executed: Vec<&PointOutcome> = ok.iter().copied().filter(|o| !o.resumed).collect();
        let mut merged_stats = LatencyStats::new();
        let mut merged_hist = LatencyHistogram::new();
        for o in &ok {
            merged_stats.merge(&o.result.report.latency());
            merged_hist.merge(&o.result.report.histogram);
        }
        let wall_s = wall.as_secs_f64();
        let total_cycles: u64 = ok.iter().map(|o| o.result.report.cycles_simulated).sum();
        let total_flits: u64 = ok.iter().map(|o| o.result.report.counters.flits_ejected).sum();
        let workers: Vec<WorkerSummary> = worker_stats
            .iter()
            .enumerate()
            .map(|(w, &(points, busy))| {
                let busy_ms = busy.as_secs_f64() * 1e3;
                WorkerSummary {
                    worker: w,
                    points,
                    busy_ms,
                    idle_ms: (wall.as_secs_f64() * 1e3 - busy_ms).max(0.0),
                }
            })
            .collect();
        let imbalance = if workers.is_empty() {
            1.0
        } else {
            let mean_busy = workers.iter().map(|w| w.busy_ms).sum::<f64>() / workers.len() as f64;
            let max_busy = workers.iter().map(|w| w.busy_ms).fold(0.0, f64::max);
            if mean_busy > 0.0 {
                max_busy / mean_busy
            } else {
                1.0
            }
        };
        let failed_points: Vec<FailureSummary> =
            outcomes.iter().filter_map(|r| r.as_ref().err()).map(FailureSummary::of).collect();
        let failure_busy_ms: f64 = outcomes
            .iter()
            .filter_map(|r| r.as_ref().err())
            .map(|f| f.wall.as_secs_f64() * 1e3)
            .sum();
        let attempts_of = |r: &Result<PointOutcome, PointFailure>| match r {
            Ok(o) => o.attempts,
            Err(f) => f.attempts,
        };
        // Anomalies: windowed detections on completed points (halt off
        // or non-halting detectors) plus one per triggered halt.
        let mut anomalies: u64 = ok.iter().map(|o| o.result.report.anomalies.total()).sum();
        let mut anomaly_kinds: Vec<String> =
            ok.iter().flat_map(|o| o.result.report.anomalies.kinds()).map(str::to_string).collect();
        for f in outcomes.iter().filter_map(|r| r.as_ref().err()) {
            if let FailureKind::Anomaly { detector, .. } = &f.kind {
                anomalies += 1;
                anomaly_kinds.push(detector.clone());
            }
        }
        anomaly_kinds.sort_unstable();
        anomaly_kinds.dedup();
        RunSummary {
            jobs,
            points: outcomes.len(),
            wall_ms: wall.as_secs_f64() * 1e3,
            busy_ms: ok.iter().map(|o| o.wall.as_secs_f64() * 1e3).sum::<f64>() + failure_busy_ms,
            cycles_simulated: total_cycles,
            packets_ejected: ok.iter().map(|o| o.result.report.packets_ejected).sum(),
            kcycles_per_sec: per_sec(total_cycles as f64 / 1e3, wall_s),
            mflits_per_sec: per_sec(total_flits as f64 / 1e6, wall_s),
            saturated_points: ok.iter().filter(|o| o.result.report.saturated).count(),
            agg_latency_mean: merged_stats.mean(),
            agg_latency_p50: merged_hist.p50(),
            agg_latency_p95: merged_hist.p95(),
            agg_latency_p99: merged_hist.p99(),
            queue_wait_mean_ms: if executed.is_empty() {
                0.0
            } else {
                executed.iter().map(|o| o.queue_wait.as_secs_f64() * 1e3).sum::<f64>()
                    / executed.len() as f64
            },
            queue_wait_max_ms: executed
                .iter()
                .map(|o| o.queue_wait.as_secs_f64() * 1e3)
                .fold(0.0, f64::max),
            imbalance,
            peak_arena_flits: ok.iter().map(|o| o.result.arena_peak_flits).max().unwrap_or(0),
            workers,
            build: Provenance::current(),
            point_details: ok
                .iter()
                .map(|o| PointSummary {
                    label: o.label.clone(),
                    seed: o.seed,
                    wall_ms: o.wall.as_secs_f64() * 1e3,
                    cycles: o.result.report.cycles_simulated,
                    avg_latency: o.result.report.avg_latency,
                    saturated: o.result.report.saturated,
                    kcycles_per_sec: per_sec(
                        o.result.report.cycles_simulated as f64 / 1e3,
                        o.wall.as_secs_f64(),
                    ),
                    mflits_per_sec: per_sec(
                        o.result.report.counters.flits_ejected as f64 / 1e6,
                        o.wall.as_secs_f64(),
                    ),
                    queue_wait_ms: o.queue_wait.as_secs_f64() * 1e3,
                    arena_peak_flits: o.result.arena_peak_flits,
                })
                .collect(),
            failed_points,
            resumed_points: ok.iter().filter(|o| o.resumed).count(),
            retried_points: outcomes.iter().filter(|r| attempts_of(r) > 1).count(),
            windows: aggregate_windows(&ok),
            anomalies,
            anomaly_kinds,
        }
    }

    /// One-line human rendering (printed to stderr by the benches in
    /// text mode).
    pub fn one_line(&self) -> String {
        let mut line = format!(
            "{} points on {} workers: {:.2} s wall, {:.2} s busy, {} cycles \
             ({:.0} Kcyc/s, {:.2} Mflit/s), {} saturated",
            self.points,
            self.jobs,
            self.wall_ms / 1e3,
            self.busy_ms / 1e3,
            self.cycles_simulated,
            self.kcycles_per_sec,
            self.mflits_per_sec,
            self.saturated_points,
        );
        if !self.failed_points.is_empty() {
            line.push_str(&format!(", {} FAILED", self.failed_points.len()));
        }
        if self.resumed_points > 0 {
            line.push_str(&format!(", {} resumed", self.resumed_points));
        }
        if self.anomalies > 0 {
            line.push_str(&format!(
                ", {} ANOMALIES ({})",
                self.anomalies,
                self.anomaly_kinds.join(", ")
            ));
        }
        line
    }
}

/// One machine-readable progress record, emitted as a JSON line on
/// stderr after each point completes when [`Runner::progress_json`] is
/// on (the `--progress-json` bench flag). Lines are self-contained so a
/// monitor can tail them without tracking state.
///
/// `Serialize` is hand-written so the `failed` field only appears on
/// failure lines — success lines stay byte-identical to earlier
/// releases.
#[derive(Debug, Clone)]
pub struct ProgressEvent {
    /// Points finished so far (including this one).
    pub done: usize,
    /// Points in the batch.
    pub total: usize,
    /// Label of the point that just finished.
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// Wall-clock the point took on its worker, milliseconds.
    pub wall_ms: f64,
    /// Cycles the point simulated (0 for failures).
    pub cycles: u64,
    /// The point's simulation rate, thousands of cycles per second.
    pub kcycles_per_sec: f64,
    /// Whether the point saturated.
    pub saturated: bool,
    /// Whether the point failed (the line then records the failure, not
    /// a result).
    pub failed: bool,
}

impl Serialize for ProgressEvent {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("done".to_string(), self.done.to_value()),
            ("total".to_string(), self.total.to_value()),
            ("label".to_string(), self.label.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("wall_ms".to_string(), self.wall_ms.to_value()),
            ("cycles".to_string(), self.cycles.to_value()),
            ("kcycles_per_sec".to_string(), self.kcycles_per_sec.to_value()),
            ("saturated".to_string(), self.saturated.to_value()),
        ];
        if self.failed {
            fields.push(("failed".to_string(), self.failed.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl ProgressEvent {
    /// The event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("progress event serializes")
    }
}

/// Seeds of the submitted point list, captured before the run so the
/// ledger records batch identity even when points fail.
#[derive(Debug, Clone, Copy)]
struct SeedSpan {
    first: u64,
    min: u64,
    max: u64,
}

/// A result slot: every submitted point owns exactly one, finalized
/// exactly once (worker success/panic, watchdog timeout, fail-fast
/// skip, or checkpoint replay — whichever gets there first).
#[allow(clippy::large_enum_variant)] // one slot per point, moved out once at batch end
enum Slot {
    Empty,
    Done(PointOutcome),
    Failed(PointFailure),
}

/// What a worker currently has on its bench.
#[derive(Debug, Clone)]
struct Inflight {
    index: usize,
    since: Instant,
    /// Set by the watchdog after it times the point out: the worker
    /// must discard its (already-lost) result and exit, because a
    /// replacement has taken its place in the pool.
    zombie: bool,
}

/// Per-worker bookkeeping, indexed by worker id. Replacement workers
/// spawned by the watchdog extend both vectors.
struct Roster {
    inflight: Vec<Option<Inflight>>,
    stats: Vec<(usize, Duration)>,
}

/// Everything the detached workers, the watchdog and the waiting main
/// thread share for one batch.
struct BatchState {
    total: usize,
    started: Instant,
    next: AtomicUsize,
    abort: AtomicBool,
    points: Vec<SimPoint>,
    slots: Vec<Mutex<Slot>>,
    finalized: Mutex<usize>,
    complete: Condvar,
    progress: bool,
    progress_json: bool,
    resumed_initial: usize,
    max_attempts: u32,
    backoff: Duration,
    fail_fast: bool,
    chaos_every: Option<usize>,
    timeout: Option<Duration>,
    roster: Mutex<Roster>,
    ckpt: Mutex<Option<CheckpointWriter>>,
    config_hash: u64,
    exhibit: String,
    blackbox_dir: PathBuf,
}

/// What one point execution came back with (before slot arbitration).
#[allow(clippy::large_enum_variant)] // short-lived, one per attempt
enum Verdict {
    Ok(RunResult),
    Panicked(String),
    /// A flight-recorder detector halted the simulation; the payload
    /// carries the pre-rendered black-box dump.
    Anomaly(AnomalyAbort),
}

/// Renders a caught panic payload (the `&str`/`String` panics
/// `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Whether a panic payload looks like a transient host-resource
/// failure (worth backing off before the deterministic retry) rather
/// than a simulator bug (retried immediately — same seed, same bug,
/// but the retry budget documents the attempt).
fn is_host_resource_error(payload: &str) -> bool {
    let lower = payload.to_ascii_lowercase();
    [
        "os error",
        "no space left",
        "cannot allocate",
        "out of memory",
        "too many open files",
        "resource temporarily unavailable",
    ]
    .iter()
    .any(|pat| lower.contains(pat))
}

/// Reads one environment setting. Unset or blank means "not
/// configured"; a value that does not parse (or fails `valid`) exits
/// non-zero naming the variable — a typo in `MIRA_POINT_TIMEOUT` must
/// not silently run the sweep without its watchdog.
fn env_setting<T: std::str::FromStr>(
    key: &'static str,
    expects: &str,
    valid: impl Fn(&T) -> bool,
) -> Option<T> {
    let raw = std::env::var(key).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<T>() {
        Ok(v) if valid(&v) => Some(v),
        _ => crate::error::HostError::Flag {
            flag: key,
            detail: format!("expects {expects}, got {trimmed:?}"),
        }
        .exit(),
    }
}

impl BatchState {
    /// Runs one point with the retry policy: bounded attempts, same
    /// seed every time, exponential backoff only between attempts that
    /// failed on host resources.
    fn attempt_point(&self, index: usize, p: &SimPoint) -> (Verdict, u32) {
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let inject =
                attempt == 1 && self.chaos_every.is_some_and(|n| (index + 1).is_multiple_of(n));
            let run = &p.run;
            let seed = p.seed;
            // The closures are pure functions of the seed by contract
            // (module docs), so observing one after an unwind is safe.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
                if inject {
                    panic!("injected chaos panic (MIRA_CHAOS_PANIC_EVERY)");
                }
                run(seed)
            }));
            match outcome {
                Ok(result) => return (Verdict::Ok(result), attempt),
                Err(payload) => {
                    // An anomaly halt is a deterministic simulator
                    // verdict carrying a black-box dump, not a host
                    // fault: take it out of the unwind path *before*
                    // the payload is flattened to a string, and never
                    // retry it (same seed, same wedge).
                    let payload = match payload.downcast::<AnomalyAbort>() {
                        Ok(abort) => return (Verdict::Anomaly(*abort), attempt),
                        Err(payload) => panic_message(payload.as_ref()),
                    };
                    if attempt >= self.max_attempts {
                        return (Verdict::Panicked(payload), attempt);
                    }
                    if mira_obs::enabled() {
                        POINT_RETRIES_TOTAL.inc(1);
                    }
                    if is_host_resource_error(&payload) && !self.backoff.is_zero() {
                        std::thread::sleep(
                            self.backoff * 2u32.saturating_pow((attempt - 1).min(5)),
                        );
                    }
                }
            }
        }
    }

    /// Writes one anomaly black-box dump as
    /// `<blackbox_dir>/<exhibit>-p<index>.json`, creating the directory
    /// as needed. IO failure warns and returns `None` — the typed
    /// failure still records the detector and cycle.
    fn write_blackbox(&self, index: usize, abort: &AnomalyAbort) -> Option<PathBuf> {
        let path = self.blackbox_dir.join(format!("{}-p{index}.json", self.exhibit));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.blackbox_dir)?;
            std::fs::write(&path, abort.dump.as_bytes())
        };
        match write() {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("[runner] warning: cannot write black-box dump {}: {e}", path.display());
                None
            }
        }
    }

    /// Installs `value` into slot `index` if it is still empty, runs
    /// the side effects (metrics, checkpoint append, progress), bumps
    /// the finalized count and wakes the waiter. Returns whether this
    /// call won the slot — a loser (a closure that finished after the
    /// watchdog already timed its point out) discards its value.
    fn finalize(&self, index: usize, value: Slot) -> bool {
        let progress_rec;
        {
            let mut slot = self.slots[index].lock().expect("result slot");
            if !matches!(*slot, Slot::Empty) {
                return false;
            }
            match &value {
                Slot::Done(o) => {
                    if mira_obs::enabled() {
                        POINTS_TOTAL.inc(1);
                        CYCLES_TOTAL.inc(o.result.report.cycles_simulated);
                        POINT_WALL_MS.observe(o.wall.as_millis() as u64);
                        QUEUE_WAIT_MS.observe(o.queue_wait.as_millis() as u64);
                        ARENA_LIVE_PEAK.set_max(o.result.arena_peak_flits);
                        ROUTER_BUFFER_PEAK.set_max(o.result.buffer_peak_flits);
                        ANOMALIES_TOTAL.inc(o.result.report.anomalies.total());
                    }
                    // Flush the checkpoint *before* the point counts as
                    // finalized: once visible as done, it is durable.
                    self.checkpoint_append(o);
                    progress_rec = (self.progress || self.progress_json).then(|| ProgressRecord {
                        label: o.label.clone(),
                        seed: o.seed,
                        wall: o.wall,
                        cycles: o.result.report.cycles_simulated,
                        saturated: o.result.report.saturated,
                        failed: false,
                        detail: None,
                    });
                }
                Slot::Failed(f) => {
                    if mira_obs::enabled() {
                        POINT_FAILURES_TOTAL.inc(1);
                        if matches!(f.kind, FailureKind::Timeout { .. }) {
                            POINT_TIMEOUTS_TOTAL.inc(1);
                        }
                        if matches!(f.kind, FailureKind::Anomaly { .. }) {
                            ANOMALIES_TOTAL.inc(1);
                        }
                    }
                    if self.fail_fast && !matches!(f.kind, FailureKind::Skipped) {
                        self.abort.store(true, Ordering::Relaxed);
                    }
                    progress_rec = (self.progress || self.progress_json).then(|| ProgressRecord {
                        label: f.label.clone(),
                        seed: f.seed,
                        wall: f.wall,
                        cycles: 0,
                        saturated: false,
                        failed: true,
                        detail: Some(f.kind.detail()),
                    });
                }
                Slot::Empty => unreachable!("finalize is never called with an empty value"),
            }
            *slot = value;
        }
        let finished = {
            let mut done = self.finalized.lock().expect("finalized count");
            *done += 1;
            *done
        };
        if let Some(rec) = progress_rec {
            self.emit_progress(finished, &rec);
        }
        self.complete.notify_all();
        true
    }

    /// Appends a completed point to the batch's checkpoint file (if
    /// one is configured), disabling checkpointing for the rest of the
    /// batch on IO failure — checkpoints are a convenience, not a
    /// reason to fail a healthy sweep.
    fn checkpoint_append(&self, o: &PointOutcome) {
        let mut guard = self.ckpt.lock().expect("checkpoint writer");
        if let Some(w) = guard.as_mut() {
            let entry = CheckpointEntry {
                config_hash: ledger::hash_hex(self.config_hash),
                label: o.label.clone(),
                seed: o.seed,
                result: o.result.to_value(),
            };
            if let Err(e) = w.append(&entry) {
                eprintln!(
                    "[runner] warning: checkpoint append to {} failed: {e}; disabling checkpoints",
                    w.path().display()
                );
                *guard = None;
            }
        }
    }

    /// Emits the human and/or JSONL progress line for one finalized
    /// point.
    fn emit_progress(&self, finished: usize, rec: &ProgressRecord) {
        if self.progress {
            if rec.failed {
                eprintln!(
                    "[runner] {finished}/{} done (FAILED: {}: {})",
                    self.total,
                    rec.label,
                    rec.detail.as_deref().unwrap_or("failed"),
                );
            } else {
                let elapsed = self.started.elapsed();
                let run_done = finished.saturating_sub(self.resumed_initial).max(1);
                let eta = elapsed.mul_f64((self.total - finished) as f64 / run_done as f64);
                let rate = per_sec(rec.cycles as f64 / 1e3, rec.wall.as_secs_f64());
                eprintln!(
                    "[runner] {finished}/{} done, {elapsed:.1?} elapsed, ~{eta:.1?} left (last: {} in {:.1?}, {rate:.0} Kcyc/s)",
                    self.total, rec.label, rec.wall,
                );
            }
        }
        if self.progress_json {
            let event = ProgressEvent {
                done: finished,
                total: self.total,
                label: rec.label.clone(),
                seed: rec.seed,
                wall_ms: rec.wall.as_secs_f64() * 1e3,
                cycles: rec.cycles,
                kcycles_per_sec: per_sec(rec.cycles as f64 / 1e3, rec.wall.as_secs_f64()),
                saturated: rec.saturated,
                failed: rec.failed,
            };
            eprintln!("{}", event.to_jsonl());
        }
    }
}

/// Progress data captured inside `finalize` (before the value moves
/// into its slot) and emitted after the finalized count is known.
struct ProgressRecord {
    label: String,
    seed: u64,
    wall: Duration,
    cycles: u64,
    saturated: bool,
    failed: bool,
    detail: Option<String>,
}

/// The claim-run-finalize loop every (detached) worker thread runs.
fn worker_loop(state: Arc<BatchState>, wid: usize) {
    loop {
        let i = state.next.fetch_add(1, Ordering::Relaxed);
        if i >= state.total {
            break;
        }
        // Resumed points were finalized before the workers started.
        if !matches!(*state.slots[i].lock().expect("result slot"), Slot::Empty) {
            continue;
        }
        let p = &state.points[i];
        if state.abort.load(Ordering::Relaxed) {
            state.finalize(
                i,
                Slot::Failed(PointFailure {
                    index: i,
                    label: p.label.clone(),
                    seed: p.seed,
                    kind: FailureKind::Skipped,
                    attempts: 0,
                    wall: Duration::ZERO,
                }),
            );
            continue;
        }
        {
            let mut roster = state.roster.lock().expect("worker roster");
            roster.inflight[wid] =
                Some(Inflight { index: i, since: Instant::now(), zombie: false });
        }
        let queue_wait = state.started.elapsed();
        let t0 = Instant::now();
        let (verdict, attempts) = state.attempt_point(i, p);
        let wall = t0.elapsed();
        // Stats update and zombie check happen *before* finalize so the
        // waiter's post-batch roster snapshot is complete.
        let am_zombie = {
            let mut roster = state.roster.lock().expect("worker roster");
            let zombie = roster.inflight[wid].as_ref().is_some_and(|f| f.zombie);
            roster.inflight[wid] = None;
            roster.stats[wid].0 += 1;
            roster.stats[wid].1 += wall;
            zombie
        };
        let slot = match verdict {
            Verdict::Ok(result) => Slot::Done(PointOutcome {
                label: p.label.clone(),
                seed: p.seed,
                result,
                wall,
                queue_wait,
                attempts,
                resumed: false,
            }),
            Verdict::Panicked(payload) => Slot::Failed(PointFailure {
                index: i,
                label: p.label.clone(),
                seed: p.seed,
                kind: FailureKind::Panic { payload },
                attempts,
                wall,
            }),
            Verdict::Anomaly(abort) => {
                let dump_path = state.write_blackbox(i, &abort);
                Slot::Failed(PointFailure {
                    index: i,
                    label: p.label.clone(),
                    seed: p.seed,
                    kind: FailureKind::Anomaly {
                        detector: abort.kind.name().to_string(),
                        cycle: abort.cycle,
                        dump_path,
                    },
                    attempts,
                    wall,
                })
            }
        };
        state.finalize(i, slot);
        if am_zombie {
            // The watchdog timed this point out and already spawned a
            // replacement; this thread's slot in the pool is taken.
            break;
        }
    }
}

/// Spawns one detached worker. Returns whether the spawn succeeded
/// (failure warns and degrades — the batch still completes on the
/// remaining workers).
fn spawn_worker(state: &Arc<BatchState>, wid: usize) -> bool {
    let st = Arc::clone(state);
    match std::thread::Builder::new()
        .name(format!("mira-worker-{wid}"))
        .spawn(move || worker_loop(st, wid))
    {
        Ok(handle) => {
            // Detached on purpose: a worker stuck in a runaway closure
            // must not block batch completion; the process reaps it.
            drop(handle);
            true
        }
        Err(e) => {
            eprintln!("[runner] warning: cannot spawn worker {wid}: {e}");
            false
        }
    }
}

/// One watchdog pass: times out in-flight points that exceeded the
/// limit, marks their workers zombies and spawns replacements.
fn watchdog_scan(state: &Arc<BatchState>) {
    let Some(limit) = state.timeout else { return };
    let stuck: Vec<(usize, usize, Duration)> = {
        let roster = state.roster.lock().expect("worker roster");
        roster
            .inflight
            .iter()
            .enumerate()
            .filter_map(|(wid, slot)| {
                slot.as_ref().and_then(|f| {
                    let running = f.since.elapsed();
                    (!f.zombie && running > limit).then_some((wid, f.index, running))
                })
            })
            .collect()
    };
    for (wid, index, running) in stuck {
        let p = &state.points[index];
        let failure = PointFailure {
            index,
            label: p.label.clone(),
            seed: p.seed,
            kind: FailureKind::Timeout { limit },
            attempts: 1,
            wall: running,
        };
        if !state.finalize(index, Slot::Failed(failure)) {
            continue; // the worker finished while we were deciding
        }
        // The worker is genuinely stuck inside the closure: it will
        // discard its result (the slot is taken) and exit when — if —
        // the closure returns. Replace it so the pool keeps its width.
        let replacement = {
            let mut roster = state.roster.lock().expect("worker roster");
            let still_on_it = roster.inflight[wid]
                .as_mut()
                .filter(|f| f.index == index)
                .map(|f| f.zombie = true)
                .is_some();
            if still_on_it {
                roster.inflight.push(None);
                roster.stats.push((0, Duration::ZERO));
                Some(roster.inflight.len() - 1)
            } else {
                None
            }
        };
        if let Some(new_wid) = replacement {
            spawn_worker(state, new_wid);
        }
    }
}

/// Replays verified checkpoint entries into the result slots before any
/// worker starts. Returns how many points were prefilled.
fn prefill_from_checkpoint(
    path: &Path,
    config_hash: u64,
    points: &[SimPoint],
    slots: &[Mutex<Slot>],
    progress: bool,
) -> usize {
    let loaded = match checkpoint::load(path, config_hash) {
        Ok(l) => l,
        Err(e) => {
            eprintln!(
                "[runner] warning: cannot read checkpoint {}: {e}; running every point",
                path.display()
            );
            return 0;
        }
    };
    if loaded.torn_lines > 0 {
        eprintln!(
            "[runner] checkpoint {}: ignored {} torn line(s) from an interrupted append",
            path.display(),
            loaded.torn_lines
        );
    }
    if loaded.stale_lines > 0 {
        eprintln!(
            "[runner] checkpoint {}: ignored {} line(s) from a different batch",
            path.display(),
            loaded.stale_lines
        );
    }
    let mut pool = loaded.entries;
    let mut resumed = 0usize;
    for (i, p) in points.iter().enumerate() {
        let Some(pos) = pool.iter().position(|e| e.label == p.label && e.seed == p.seed) else {
            continue;
        };
        let entry = pool.swap_remove(pos);
        match RunResult::from_value(&entry.result) {
            Ok(result) => {
                *slots[i].lock().expect("result slot") = Slot::Done(PointOutcome {
                    label: p.label.clone(),
                    seed: p.seed,
                    result,
                    wall: Duration::ZERO,
                    queue_wait: Duration::ZERO,
                    attempts: 0,
                    resumed: true,
                });
                resumed += 1;
            }
            Err(e) => {
                eprintln!(
                    "[runner] warning: checkpoint {}: entry for `{}` does not replay ({e}); re-running it",
                    path.display(),
                    p.label
                );
            }
        }
    }
    if resumed > 0 && progress {
        eprintln!("[runner] resumed {resumed}/{} point(s) from {}", points.len(), path.display());
    }
    resumed
}

/// The worker pool configuration.
#[derive(Debug, Clone)]
pub struct Runner {
    jobs: usize,
    progress: bool,
    progress_json: bool,
    ledger_path: Option<PathBuf>,
    exhibit: Option<String>,
    max_attempts: u32,
    backoff: Duration,
    point_timeout: Option<Duration>,
    fail_fast: bool,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    chaos_every: Option<usize>,
    blackbox_dir: Option<PathBuf>,
}

/// Default directory for anomaly black-box dumps.
const DEFAULT_BLACKBOX_DIR: &str = "results/blackbox";

impl Runner {
    /// Pool sized from the environment: `MIRA_JOBS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    /// Progress reporting defaults to on when stderr is a terminal.
    ///
    /// Crash-safety policy also comes from the environment (each knob
    /// has a matching builder method and, in the benches, a CLI flag):
    ///
    /// - `MIRA_POINT_RETRIES` — extra attempts per failed point,
    /// - `MIRA_POINT_TIMEOUT` — watchdog limit per point, seconds,
    /// - `MIRA_FAIL_FAST` — `1`/`true`: skip remaining points after
    ///   the first failure,
    /// - `MIRA_CHECKPOINT_DIR` — write per-point sweep checkpoints
    ///   under this directory,
    /// - `MIRA_RESUME` — `1`/`true`: replay completed points from the
    ///   checkpoint before running the rest,
    /// - `MIRA_CHAOS_PANIC_EVERY` — fault injection for the chaos CI
    ///   job: panic the first attempt of every Nth point.
    pub fn from_env() -> Self {
        let jobs = env_setting("MIRA_JOBS", "a positive worker count", |&n: &usize| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let truthy = |k: &str| {
            std::env::var(k).is_ok_and(|v| {
                matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes")
            })
        };
        let retries = env_setting("MIRA_POINT_RETRIES", "an extra-attempt count", |_: &u32| true)
            .unwrap_or(0);
        let point_timeout = env_setting("MIRA_POINT_TIMEOUT", "positive seconds", |&s: &f64| {
            s > 0.0 && s.is_finite()
        })
        .map(Duration::from_secs_f64);
        let resume = truthy("MIRA_RESUME");
        let checkpoint_dir = if std::env::var("MIRA_CHECKPOINT_DIR").is_ok() {
            Some(checkpoint::default_dir())
        } else {
            None
        };
        let chaos_every =
            env_setting("MIRA_CHAOS_PANIC_EVERY", "a positive point period", |&n: &usize| n > 0);
        Runner {
            jobs,
            progress: std::io::stderr().is_terminal(),
            progress_json: false,
            ledger_path: None,
            exhibit: None,
            max_attempts: retries + 1,
            backoff: Duration::from_millis(100),
            point_timeout,
            fail_fast: truthy("MIRA_FAIL_FAST"),
            checkpoint_dir,
            resume,
            chaos_every,
            blackbox_dir: None,
        }
    }

    /// Pool with an explicit worker count (progress off, no retries,
    /// no timeout, no checkpoints — this is the constructor tests use).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            progress: false,
            progress_json: false,
            ledger_path: None,
            exhibit: None,
            max_attempts: 1,
            backoff: Duration::from_millis(100),
            point_timeout: None,
            fail_fast: false,
            checkpoint_dir: None,
            resume: false,
            chaos_every: None,
            blackbox_dir: None,
        }
    }

    /// Enables or disables the stderr progress line.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Enables or disables the machine-readable JSONL progress stream
    /// on stderr (one [`ProgressEvent`] line per completed point,
    /// alongside — not replacing — the human progress line).
    pub fn progress_json(mut self, on: bool) -> Self {
        self.progress_json = on;
        self
    }

    /// Overrides the run-ledger path (default:
    /// [`mira_obs::ledger::default_path`]). Only consulted when
    /// observability is enabled.
    pub fn ledger_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.ledger_path = Some(path.into());
        self
    }

    /// Names the exhibit for ledger entries and checkpoint files
    /// (default: the binary's file stem).
    pub fn exhibit(mut self, name: impl Into<String>) -> Self {
        self.exhibit = Some(name.into());
        self
    }

    /// Extra attempts per failed point (0 = fail on the first panic).
    /// Retries rerun the closure with the *same seed*, so a retried
    /// success is bit-identical to a first-try success.
    pub fn point_retries(mut self, retries: u32) -> Self {
        self.max_attempts = retries + 1;
        self
    }

    /// Base backoff between attempts that failed on host resources
    /// (doubled per attempt; other panics retry immediately).
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Watchdog limit per point (all attempts combined): exceeding it
    /// marks the point [`FailureKind::Timeout`] and replaces its stuck
    /// worker so the batch keeps moving.
    pub fn point_timeout(mut self, limit: Duration) -> Self {
        self.point_timeout = Some(limit);
        self
    }

    /// Fail-fast policy: after the first point failure, remaining
    /// unstarted points are recorded [`FailureKind::Skipped`] instead
    /// of executed (default: degrade gracefully — run everything and
    /// report all failures at the end).
    pub fn fail_fast(mut self, on: bool) -> Self {
        self.fail_fast = on;
        self
    }

    /// Writes per-point sweep checkpoints under `dir` (one
    /// `<exhibit>-<confighash>.jsonl` file per batch identity). A
    /// non-resume run resets the batch's file first.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Replays completed points from the batch's checkpoint file
    /// before running the rest. Implies checkpointing into the default
    /// directory when none is configured.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Fault injection for chaos tests: panic the *first* attempt of
    /// every `n`-th point (1-based, by submission index — deterministic
    /// across schedules and resumes). Combined with
    /// [`Runner::point_retries`], the batch still completes.
    pub fn chaos_every(mut self, n: usize) -> Self {
        self.chaos_every = Some(n.max(1));
        self
    }

    /// Directory anomaly black-box dumps are written under (default:
    /// `results/blackbox`). One `<exhibit>-p<index>.json` file per
    /// point that tripped a halting detector.
    pub fn blackbox_out(mut self, dir: impl Into<PathBuf>) -> Self {
        self.blackbox_dir = Some(dir.into());
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point and returns outcomes in input order, panicking
    /// with an itemized [`HostError::Batch`] message if any point
    /// failed — the historical all-success contract positional
    /// consumers rely on. Use [`Runner::try_run`] to handle failures
    /// gracefully.
    pub fn run(&self, points: Vec<SimPoint>) -> RunBatch {
        match self.try_run(points).into_complete() {
            Ok(batch) => batch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs every point with fault isolation and returns one `Result`
    /// per point, in input order.
    ///
    /// Workers pull the next unclaimed index from a shared atomic
    /// counter; each outcome lands in its own slot, so no result
    /// depends on completion order. Panicking points are caught and
    /// retried per the configured policy; runaway points are timed out
    /// by the watchdog; completed points are checkpointed and replayed
    /// on resume.
    pub fn try_run(&self, points: Vec<SimPoint>) -> TryRunBatch {
        let started = Instant::now();
        let total = points.len();
        let exhibit = self.exhibit_name();
        // Hashed before the run so a crashing point can't change the
        // batch's identity in the ledger or checkpoint.
        let config_hash =
            ledger::config_hash(&exhibit, points.iter().map(|p| (p.label(), p.seed())));
        let seeds = SeedSpan {
            first: points.first().map_or(0, |p| p.seed),
            min: points.iter().map(|p| p.seed).min().unwrap_or(0),
            max: points.iter().map(|p| p.seed).max().unwrap_or(0),
        };

        let ckpt_path = self
            .checkpoint_dir
            .clone()
            .or_else(|| if self.resume { Some(checkpoint::default_dir()) } else { None })
            .map(|dir| checkpoint::path_for(&dir, &exhibit, config_hash));

        let slots: Vec<Mutex<Slot>> = (0..total).map(|_| Mutex::new(Slot::Empty)).collect();
        let mut resumed = 0usize;
        if let Some(path) = &ckpt_path {
            if self.resume {
                resumed =
                    prefill_from_checkpoint(path, config_hash, &points, &slots, self.progress);
            } else if path.exists() {
                // A fresh (non-resume) run restarts its checkpoint:
                // stacking a rerun's entries onto the old file would
                // only grow it with duplicates.
                if let Err(e) = std::fs::remove_file(path) {
                    eprintln!("[runner] warning: cannot reset checkpoint {}: {e}", path.display());
                }
            }
        }
        if resumed > 0 && mira_obs::enabled() {
            POINTS_RESUMED_TOTAL.inc(resumed as u64);
        }
        let writer = ckpt_path.as_ref().and_then(|path| match CheckpointWriter::open(path) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!(
                    "[runner] warning: cannot open checkpoint {}: {e}; running without checkpoints",
                    path.display()
                );
                None
            }
        });

        let runtime_total = total - resumed;
        let workers = if runtime_total == 0 { 0 } else { self.jobs.min(runtime_total).max(1) };

        let state = Arc::new(BatchState {
            total,
            started,
            next: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            points,
            slots,
            finalized: Mutex::new(resumed),
            complete: Condvar::new(),
            progress: self.progress,
            progress_json: self.progress_json,
            resumed_initial: resumed,
            max_attempts: self.max_attempts.max(1),
            backoff: self.backoff,
            fail_fast: self.fail_fast,
            chaos_every: self.chaos_every,
            timeout: self.point_timeout,
            roster: Mutex::new(Roster {
                inflight: vec![None; workers],
                stats: vec![(0, Duration::ZERO); workers],
            }),
            ckpt: Mutex::new(writer),
            config_hash,
            exhibit: exhibit.clone(),
            blackbox_dir: self
                .blackbox_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from(DEFAULT_BLACKBOX_DIR)),
        });

        let mut spawned = 0usize;
        for wid in 0..workers {
            if spawn_worker(&state, wid) {
                spawned += 1;
            }
        }
        if spawned == 0 && runtime_total > 0 {
            // Could not start a single thread: degrade to running the
            // batch inline (no watchdog for a stuck point, but the
            // batch still completes).
            worker_loop(Arc::clone(&state), 0);
        }

        // Wait for completion, scanning for stuck points when a
        // watchdog timeout is configured.
        let tick = state.timeout.map_or(Duration::from_millis(250), |t| {
            (t / 4).clamp(Duration::from_millis(10), Duration::from_millis(250))
        });
        {
            let mut done = state.finalized.lock().expect("finalized count");
            while *done < total {
                let (guard, _) = state.complete.wait_timeout(done, tick).expect("finalized count");
                done = guard;
                if *done >= total {
                    break;
                }
                if state.timeout.is_some() {
                    drop(done);
                    watchdog_scan(&state);
                    done = state.finalized.lock().expect("finalized count");
                }
            }
        }

        // Every slot is finalized; zombies (if any) hold the Arc but
        // never touch slots again, so draining via replace is safe.
        let outcomes: Vec<Result<PointOutcome, PointFailure>> = state
            .slots
            .iter()
            .map(|slot| {
                match std::mem::replace(&mut *slot.lock().expect("result slot"), Slot::Empty) {
                    Slot::Done(o) => Ok(o),
                    Slot::Failed(f) => Err(f),
                    Slot::Empty => unreachable!("batch completed with an unfinalized slot"),
                }
            })
            .collect();
        let worker_stats = state.roster.lock().expect("worker roster").stats.clone();
        let summary = RunSummary::new(workers.max(1), started.elapsed(), &outcomes, &worker_stats);
        if mira_obs::enabled() && total > 0 {
            self.append_ledger(&exhibit, config_hash, seeds, &summary);
        }
        TryRunBatch { exhibit, outcomes, summary }
    }

    /// The exhibit name for ledger entries: the explicit override, or
    /// the running binary's file stem.
    fn exhibit_name(&self) -> String {
        if let Some(name) = &self.exhibit {
            return name.clone();
        }
        std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// Appends one batch entry to the durable run ledger (and the
    /// in-process session log). IO failure warns on stderr instead of
    /// failing the batch — the ledger is observability, not results.
    ///
    /// Seeds come from the *submitted* point list (not whichever points
    /// completed), so partial and resumed runs of the same batch record
    /// the same identity.
    fn append_ledger(
        &self,
        exhibit: &str,
        config_hash: u64,
        seeds: SeedSpan,
        summary: &RunSummary,
    ) {
        let build = summary.build.clone();
        let entry = LedgerEntry {
            ts_ms: ledger::unix_millis(),
            exhibit: exhibit.to_string(),
            config_hash: ledger::hash_hex(config_hash),
            seed: seeds.first,
            seed_min: seeds.min,
            seed_max: seeds.max,
            git_rev: build.git_rev,
            profile: build.profile,
            rustc: build.rustc,
            points: summary.points,
            jobs: summary.jobs,
            wall_ms: summary.wall_ms,
            cycles_simulated: summary.cycles_simulated,
            kcycles_per_sec: summary.kcycles_per_sec,
            mflits_per_sec: summary.mflits_per_sec,
            saturated_points: summary.saturated_points,
            failed_points: summary.failed_points.len(),
            resumed_points: summary.resumed_points,
            peak_arena_flits: summary.peak_arena_flits,
            anomalies: (summary.anomalies > 0).then_some(summary.anomalies),
            anomaly_kinds: (!summary.anomaly_kinds.is_empty())
                .then(|| summary.anomaly_kinds.clone()),
        };
        let path = self.ledger_path.clone().unwrap_or_else(ledger::default_path);
        if let Err(e) = ledger::append(&path, &entry) {
            eprintln!("[runner] warning: could not append run ledger {}: {e}", path.display());
        }
        ledger::record_session(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use crate::experiments::common::{quick_sim_config, run_arch};
    use mira_noc::traffic::UniformRandom;
    use std::sync::atomic::AtomicU32;

    fn ur_point(label: &str, arch: Arch, rate: f64, seed: u64) -> SimPoint {
        SimPoint::new(label, seed, move |s| {
            let cfg = quick_sim_config();
            run_arch(arch, false, Box::new(UniformRandom::new(rate, 5, s)), cfg)
        })
    }

    fn quick_run(seed: u64) -> RunResult {
        run_arch(
            Arch::TwoDB,
            false,
            Box::new(UniformRandom::new(0.02, 5, seed)),
            quick_sim_config(),
        )
    }

    fn scratch_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mira_runner_{name}_{}", std::process::id()))
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        // Pinned values: the derivation must never change, or every
        // calibrated experiment shifts.
        assert_eq!(derive_seed(EXPERIMENT_SEED, 0), derive_seed(EXPERIMENT_SEED, 0));
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(EXPERIMENT_SEED, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "derived seeds must not collide");
        // Different bases give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn results_come_back_in_input_order() {
        let points = vec![
            ur_point("a", Arch::TwoDB, 0.05, 1),
            ur_point("b", Arch::ThreeDM, 0.05, 2),
            ur_point("c", Arch::ThreeDME, 0.05, 3),
        ];
        let batch = Runner::with_jobs(3).run(points);
        let labels: Vec<&str> = batch.outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(batch.outcomes[0].result.arch, Arch::TwoDB);
        assert_eq!(batch.outcomes[2].result.arch, Arch::ThreeDME);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = Runner::with_jobs(4).run(Vec::new());
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.summary.points, 0);
        assert_eq!(batch.summary.agg_latency_p50, None);
    }

    #[test]
    fn summary_aggregates_points() {
        let points = vec![
            ur_point("x", Arch::TwoDB, 0.05, EXPERIMENT_SEED),
            ur_point("y", Arch::TwoDB, 0.05, EXPERIMENT_SEED),
        ];
        let batch = Runner::with_jobs(2).run(points);
        let s = &batch.summary;
        assert_eq!(s.points, 2);
        assert_eq!(s.jobs, 2);
        assert_eq!(
            s.packets_ejected,
            batch.outcomes.iter().map(|o| o.result.report.packets_ejected).sum::<u64>()
        );
        // Identical seeds ⇒ identical runs ⇒ the merged mean equals the
        // per-point mean.
        let per_point = batch.outcomes[0].result.report.avg_latency;
        assert!((s.agg_latency_mean - per_point).abs() < 1e-9);
        assert!(s.wall_ms > 0.0 && s.busy_ms > 0.0);
        assert_eq!(s.point_details.len(), 2);
        assert_eq!(s.point_details[0].label, "x");
        assert!(s.failed_points.is_empty());
        assert_eq!(s.resumed_points, 0);
        assert_eq!(s.retried_points, 0);
        // Self-metrics: the sim rate ties out against cycles and wall.
        assert!(s.kcycles_per_sec > 0.0);
        let expected = s.cycles_simulated as f64 / 1e3 / (s.wall_ms / 1e3);
        assert!((s.kcycles_per_sec - expected).abs() < 1e-6 * expected.max(1.0));
        assert!(s.mflits_per_sec > 0.0);
        for d in &s.point_details {
            assert!(d.kcycles_per_sec > 0.0, "{}", d.label);
        }
        assert!(s.one_line().contains("Kcyc/s"));
        assert!(!s.one_line().contains("FAILED"));
        // The crash-safety fields stay out of clean-batch JSON.
        let json = serde_json::to_string(&s.to_value()).expect("summary serializes");
        assert!(!json.contains("failed_points"));
        assert!(!json.contains("resumed_points"));
        assert!(!json.contains("retried_points"));
        assert!(!json.contains("anomalies"), "clean batches carry no anomaly fields");
        assert_eq!(s.anomalies, 0);
    }

    #[test]
    fn jobs_env_override_parses() {
        // Only the explicit constructor is exercised here — reading
        // MIRA_JOBS in-process would race with parallel test threads.
        assert_eq!(Runner::with_jobs(0).jobs(), 1, "zero clamps to one worker");
        assert_eq!(Runner::with_jobs(7).jobs(), 7);
    }

    #[test]
    fn panicking_point_is_isolated() {
        let points = vec![
            ur_point("ok0", Arch::TwoDB, 0.05, 11),
            SimPoint::new("boom", 12, |_| panic!("injected test panic")),
            ur_point("ok2", Arch::TwoDB, 0.05, 13),
        ];
        let batch = Runner::with_jobs(2).try_run(points);
        assert!(batch.outcomes[0].is_ok());
        assert!(batch.outcomes[2].is_ok());
        let f = batch.outcomes[1].as_ref().expect_err("point 1 panicked");
        assert_eq!(f.index, 1);
        assert_eq!(f.label, "boom");
        assert_eq!(f.kind, FailureKind::Panic { payload: "injected test panic".into() });
        assert_eq!(f.attempts, 1);
        assert_eq!(batch.summary.failed_points.len(), 1);
        assert_eq!(batch.summary.failed_points[0].kind, "panic");
        assert_eq!(batch.summary.point_details.len(), 2, "details cover completed points");
        // The clean points are bit-identical to a failure-free batch.
        let clean = Runner::with_jobs(1).run(vec![
            ur_point("ok0", Arch::TwoDB, 0.05, 11),
            ur_point("ok2", Arch::TwoDB, 0.05, 13),
        ]);
        let failed_ok0 = batch.outcomes[0].as_ref().expect("ok0");
        assert_eq!(
            failed_ok0.result.report.avg_latency.to_bits(),
            clean.outcomes[0].result.report.avg_latency.to_bits()
        );
        let json = serde_json::to_string(&batch.summary.to_value()).expect("serializes");
        assert!(json.contains("failed_points"), "failure itemized in JSON");
    }

    #[test]
    fn run_panics_with_itemized_message_on_failure() {
        let points = vec![SimPoint::new("boom", 5, |_| panic!("kaboom"))];
        let runner = Runner::with_jobs(1).exhibit("panic_test");
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| runner.run(points)))
            .expect_err("run must panic on failure");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("panic_test: 1 of 1 points failed"), "{msg}");
        assert!(msg.contains("`boom` (seed 5) panicked: kaboom"), "{msg}");
    }

    #[test]
    fn flaky_point_retries_with_same_seed() {
        let tries = Arc::new(AtomicU32::new(0));
        let seen_seed = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&tries);
        let seen = Arc::clone(&seen_seed);
        let points = vec![SimPoint::new("flaky", 77, move |s| {
            seen.lock().expect("seen").push(s);
            if t.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("flaky first attempt");
            }
            quick_run(s)
        })];
        let batch =
            Runner::with_jobs(1).point_retries(1).retry_backoff(Duration::ZERO).try_run(points);
        let o = batch.outcomes[0].as_ref().expect("second attempt succeeds");
        assert_eq!(o.attempts, 2);
        assert_eq!(batch.summary.retried_points, 1);
        assert_eq!(*seen_seed.lock().expect("seen"), vec![77, 77], "retries reuse the seed");
        // Bit-identical to a first-try run with the same seed.
        assert_eq!(
            o.result.report.avg_latency.to_bits(),
            quick_run(77).report.avg_latency.to_bits()
        );
    }

    #[test]
    fn fail_fast_skips_remaining_points() {
        let points = vec![
            SimPoint::new("boom", 1, |_| panic!("first point fails")),
            ur_point("after1", Arch::TwoDB, 0.05, 2),
            ur_point("after2", Arch::TwoDB, 0.05, 3),
        ];
        let batch = Runner::with_jobs(1).fail_fast(true).try_run(points);
        assert!(matches!(
            batch.outcomes[0].as_ref().expect_err("panics").kind,
            FailureKind::Panic { .. }
        ));
        for i in [1, 2] {
            let f = batch.outcomes[i].as_ref().expect_err("skipped");
            assert_eq!(f.kind, FailureKind::Skipped, "point {i}");
        }
        assert_eq!(batch.summary.failed_points.len(), 3);
    }

    #[test]
    fn watchdog_times_out_runaway_point() {
        let points = vec![
            ur_point("quick", Arch::TwoDB, 0.05, 21),
            SimPoint::new("stuck", 22, |s| {
                std::thread::sleep(Duration::from_millis(600));
                quick_run(s)
            }),
        ];
        let t0 = Instant::now();
        let batch = Runner::with_jobs(2).point_timeout(Duration::from_millis(60)).try_run(points);
        assert!(batch.outcomes[0].is_ok(), "healthy point unaffected");
        let f = batch.outcomes[1].as_ref().expect_err("stuck point timed out");
        assert_eq!(f.kind, FailureKind::Timeout { limit: Duration::from_millis(60) });
        assert!(f.wall >= Duration::from_millis(60));
        assert!(
            t0.elapsed() < Duration::from_millis(600),
            "batch returns without waiting for the runaway closure"
        );
        assert_eq!(batch.summary.failed_points[0].kind, "timeout");
        // Let the zombie finish before the test binary tears down.
        std::thread::sleep(Duration::from_millis(650));
    }

    #[test]
    fn anomaly_abort_becomes_typed_failure_with_dump() {
        let dir = scratch_dir("blackbox_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let points = vec![
            ur_point("healthy", Arch::TwoDB, 0.05, 51),
            SimPoint::new("wedged", 52, |_| {
                std::panic::panic_any(AnomalyAbort {
                    kind: mira_noc::anomaly::AnomalyKind::NoProgress,
                    cycle: 1234,
                    dump: "{\"version\": 1}".to_string(),
                })
            }),
        ];
        let batch = Runner::with_jobs(1)
            .exhibit("blackbox_unit")
            .point_retries(3)
            .retry_backoff(Duration::ZERO)
            .blackbox_out(&dir)
            .try_run(points);
        assert!(batch.outcomes[0].is_ok(), "healthy point unaffected");
        let f = batch.outcomes[1].as_ref().expect_err("anomaly fails the point");
        let FailureKind::Anomaly { detector, cycle, dump_path } = &f.kind else {
            panic!("expected an anomaly failure, got {:?}", f.kind);
        };
        assert_eq!(detector, "no_progress");
        assert_eq!(*cycle, 1234);
        assert_eq!(f.attempts, 1, "deterministic anomalies are never retried");
        let path = dump_path.as_ref().expect("dump written");
        assert_eq!(path, &dir.join("blackbox_unit-p1.json"));
        assert_eq!(
            std::fs::read_to_string(path).expect("dump readable"),
            "{\"version\": 1}",
            "the dump file is the simulator's rendered black box, verbatim"
        );
        assert_eq!(batch.summary.failed_points.len(), 1);
        assert_eq!(batch.summary.failed_points[0].kind, "anomaly");
        assert_eq!(batch.summary.anomalies, 1);
        assert_eq!(batch.summary.anomaly_kinds, ["no_progress"]);
        assert!(batch.summary.one_line().contains("1 ANOMALIES (no_progress)"));
        let json = serde_json::to_string(&batch.summary.to_value()).expect("serializes");
        assert!(json.contains("\"anomalies\":1"), "{json}");
        assert!(json.contains("\"anomaly_kinds\":[\"no_progress\"]"), "{json}");
        assert!(f.to_string().contains("tripped anomaly detector `no_progress` at cycle 1234"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn checkpoint_resume_replays_bit_identical() {
        let dir = scratch_dir("resume_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let mk_points = || {
            vec![
                ur_point("p0", Arch::TwoDB, 0.05, 31),
                ur_point("p1", Arch::ThreeDM, 0.05, 32),
                ur_point("p2", Arch::ThreeDME, 0.05, 33),
            ]
        };
        let first =
            Runner::with_jobs(2).exhibit("resume_unit").checkpoint_dir(&dir).run(mk_points());
        let second = Runner::with_jobs(2)
            .exhibit("resume_unit")
            .checkpoint_dir(&dir)
            .resume(true)
            .run(mk_points());
        assert_eq!(second.summary.resumed_points, 3, "every point replayed");
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.label, b.label);
            assert!(b.resumed);
            assert_eq!(b.attempts, 0);
            assert_eq!(
                a.result.report.avg_latency.to_bits(),
                b.result.report.avg_latency.to_bits(),
                "{}: resumed latency bit-identical",
                a.label
            );
            assert_eq!(a.result.report.packets_ejected, b.result.report.packets_ejected);
            assert_eq!(a.result.pdp.to_bits(), b.result.pdp.to_bits());
            assert_eq!(a.result.arena_peak_flits, b.result.arena_peak_flits);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn chaos_injection_is_deterministic_and_retryable() {
        let points = vec![
            ur_point("c0", Arch::TwoDB, 0.05, 41),
            ur_point("c1", Arch::TwoDB, 0.05, 42),
            ur_point("c2", Arch::TwoDB, 0.05, 43),
            ur_point("c3", Arch::TwoDB, 0.05, 44),
        ];
        // Every 2nd point's first attempt panics; one retry heals all.
        let batch = Runner::with_jobs(2)
            .chaos_every(2)
            .point_retries(1)
            .retry_backoff(Duration::ZERO)
            .try_run(points);
        assert!(batch.outcomes.iter().all(Result::is_ok), "retries absorb injected chaos");
        assert_eq!(batch.summary.retried_points, 2, "points 2 and 4 were injected");
        let attempts: Vec<u32> =
            batch.outcomes.iter().map(|r| r.as_ref().expect("ok").attempts).collect();
        assert_eq!(attempts, [1, 2, 1, 2]);
    }
}
