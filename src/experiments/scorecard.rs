//! The reproduction scorecard: every quantitative claim the paper makes
//! in its abstract/§4, checked against a live run.
//!
//! Each claim carries the paper's figure, the measured value, and an
//! acceptance band (shape reproduction, not absolute-number matching —
//! see EXPERIMENTS.md). The `scorecard` binary prints the table; the
//! tests assert every row passes.

use mira_noc::sim::SimConfig;
use mira_traffic::workloads::Application;

use crate::arch::Arch;
use crate::experiments::common::{run_arch, sweep_ur, EXPERIMENT_SEED};
use crate::experiments::latency::{run_nuca_ur, run_trace};
use crate::report::TextTable;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Where the paper states it.
    pub source: &'static str,
    /// What is being measured.
    pub what: &'static str,
    /// The paper's figure (as printed).
    pub paper: String,
    /// Our measured value.
    pub measured: f64,
    /// Acceptance band for the measured value.
    pub band: (f64, f64),
}

impl Claim {
    /// Whether the measured value lands in the band.
    pub fn passes(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

/// Runs every claim check. `sim_cfg` controls the run length; the bands
/// are sized for `quick_sim_config` and up.
pub fn run_scorecard(sim_cfg: SimConfig, trace_cycles: u64) -> Vec<Claim> {
    let mut claims = Vec::new();

    // --- UR latency (Fig. 11(a), §4.2.1) at a pre-saturation load. ---
    let sweep = sweep_ur(&[0.15], 0.0, sim_cfg);
    let lat =
        |a: Arch| sweep.iter().find(|p| p.arch == a).expect("swept").result.report.avg_latency;
    claims.push(Claim {
        source: "abstract / §4.2.1",
        what: "3DM-E latency saving vs 2DB, UR (%)",
        paper: "up to 51".into(),
        measured: (1.0 - lat(Arch::ThreeDME) / lat(Arch::TwoDB)) * 100.0,
        band: (35.0, 75.0),
    });
    claims.push(Claim {
        source: "§4.2.1",
        what: "3DM-E latency saving vs 3DB, UR (%)",
        paper: "~26".into(),
        measured: (1.0 - lat(Arch::ThreeDME) / lat(Arch::ThreeDB)) * 100.0,
        band: (15.0, 50.0),
    });
    claims.push(Claim {
        source: "§4.2.1",
        what: "2DB vs 3DM(NC) latency ratio (same logical net)",
        paper: "similar".into(),
        measured: lat(Arch::TwoDB) / lat(Arch::ThreeDMNc),
        band: (0.98, 1.02),
    });

    // --- Pipeline combining (§4.2.1). ---
    let sweep_low = sweep_ur(&[0.05], 0.0, sim_cfg);
    let lat_low =
        |a: Arch| sweep_low.iter().find(|p| p.arch == a).expect("swept").result.report.avg_latency;
    claims.push(Claim {
        source: "§4.2.1",
        what: "combining gain, 3DM vs 3DM(NC) (%)",
        paper: "up to 14".into(),
        measured: (1.0 - lat_low(Arch::ThreeDM) / lat_low(Arch::ThreeDMNc)) * 100.0,
        band: (5.0, 30.0),
    });
    claims.push(Claim {
        source: "§4.2.1",
        what: "combining gain, 3DM-E vs 3DM-E(NC) (%)",
        paper: "~23".into(),
        measured: (1.0 - lat_low(Arch::ThreeDME) / lat_low(Arch::ThreeDMENc)) * 100.0,
        band: (5.0, 30.0),
    });

    // --- UR power (Fig. 12(a), §4.2.2). ---
    let sweep_p = sweep_ur(&[0.10], 0.0, sim_cfg);
    let pwr = |a: Arch| sweep_p.iter().find(|p| p.arch == a).expect("swept").result.avg_power_w;
    claims.push(Claim {
        source: "abstract / §4.2.2",
        what: "3DM-E power saving vs 2DB, UR (%)",
        paper: "~42".into(),
        measured: (1.0 - pwr(Arch::ThreeDME) / pwr(Arch::TwoDB)) * 100.0,
        band: (30.0, 55.0),
    });
    claims.push(Claim {
        source: "§4.2.2",
        what: "3DM power saving vs 2DB, UR (%)",
        paper: "~22".into(),
        measured: (1.0 - pwr(Arch::ThreeDM) / pwr(Arch::TwoDB)) * 100.0,
        band: (15.0, 45.0),
    });

    // --- Per-flit energy (Fig. 9, §3.4.2). ---
    let e2 = Arch::TwoDB.energy_model().flit_hop_breakdown();
    let e3 = Arch::ThreeDM.energy_model().flit_hop_breakdown();
    claims.push(Claim {
        source: "§3.4.2 / Fig. 9",
        what: "3DM flit-energy reduction vs 2DB (%)",
        paper: "35".into(),
        measured: (1.0 - e3.total_j() / e2.total_j()) * 100.0,
        band: (30.0, 40.0),
    });
    claims.push(Claim {
        source: "§3.2.1 (citing [5])",
        what: "buffer share of 2DB router energy (%)",
        paper: "31".into(),
        measured: e2.buffer_j / e2.router_j() * 100.0,
        band: (28.0, 34.0),
    });

    // --- NUCA-UR (Fig. 11(b)/(d)). ---
    let n3db = run_nuca_ur(Arch::ThreeDB, 0.05, sim_cfg);
    let ur3db =
        sweep_low.iter().find(|p| p.arch == Arch::ThreeDB).expect("swept").result.report.avg_hops;
    claims.push(Claim {
        source: "§4.2.1 / Fig. 11(d)",
        what: "3DB hop inflation under NUCA-UR (hops over UR)",
        paper: "positive".into(),
        measured: n3db.report.avg_hops - ur3db,
        band: (0.1, 2.0),
    });

    // --- Traces (Figs. 11(c), 12(c)). ---
    let app = Application::Tpcw;
    let base_lat = run_trace(app, Arch::TwoDB, false, trace_cycles, sim_cfg);
    let e_lat = run_trace(app, Arch::ThreeDME, false, trace_cycles, sim_cfg);
    claims.push(Claim {
        source: "abstract / §4.2.1",
        what: "3DM-E trace-latency saving vs 2DB (%)",
        paper: "~38".into(),
        measured: (1.0 - e_lat.report.avg_latency / base_lat.report.avg_latency) * 100.0,
        band: (28.0, 50.0),
    });
    let e_pwr = run_trace(app, Arch::ThreeDME, true, trace_cycles, sim_cfg);
    claims.push(Claim {
        source: "abstract / §4.2.2",
        what: "3DM-E trace-power saving vs 2DB, shutdown on (%)",
        paper: "~67".into(),
        measured: (1.0 - e_pwr.avg_power_w / base_lat.avg_power_w) * 100.0,
        band: (50.0, 80.0),
    });

    // --- Shutdown (Fig. 13(b)). ---
    {
        use mira_noc::traffic::{PayloadProfile, UniformRandom};
        let base = {
            let w = UniformRandom::new(0.10, 5, EXPERIMENT_SEED);
            run_arch(Arch::ThreeDM, false, Box::new(w), sim_cfg).avg_power_w
        };
        let gated = {
            let w = UniformRandom::new(0.10, 5, EXPERIMENT_SEED)
                .with_payload(PayloadProfile::with_short_fraction(4, 0.5));
            run_arch(Arch::ThreeDM, true, Box::new(w), sim_cfg).avg_power_w
        };
        claims.push(Claim {
            source: "§4.2.2 / Fig. 13(b)",
            what: "shutdown saving at 50% short flits, 3DM (%)",
            paper: "up to 36".into(),
            measured: (1.0 - gated / base) * 100.0,
            band: (18.0, 40.0),
        });
    }

    // --- Workload statistics (Fig. 13(a)). ---
    {
        let stats = crate::experiments::patterns::app_stats(Application::Tpcw, 8_000);
        claims.push(Claim {
            source: "§4.2.2 / Fig. 13(a)",
            what: "tpcw short-flit percentage (%)",
            paper: "up to 58".into(),
            measured: stats.short_payload_fraction() * 100.0,
            band: (52.0, 64.0),
        });
    }

    claims
}

/// One architecture's journey-sourced tail row of the scorecard: the
/// deep percentiles and which latency component dominates at p99.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TailSummary {
    /// Architecture name.
    pub arch: String,
    /// 99th-percentile packet latency, cycles.
    pub p99: u64,
    /// 99.9th-percentile packet latency, cycles.
    pub p999: u64,
    /// The component contributing the most cycles to the mean latency
    /// of packets at or beyond p99 (see
    /// [`AttributionShare`](mira_noc::AttributionShare)).
    pub dominant_p99: String,
    /// The dominant component's share of those packets' mean latency,
    /// in [0, 1].
    pub dominant_share: f64,
}

/// Builds the tail rows from journey-sampled UR runs at the scorecard's
/// headline load (0.15): every packet is sampled, so the aggregates are
/// exact, not estimates.
pub fn tail_summaries(sim_cfg: SimConfig) -> Vec<TailSummary> {
    let attr = crate::experiments::latency::tail_attribution(0.15, 1_000_000, sim_cfg);
    attr.archs
        .iter()
        .map(|a| {
            let p99 = a.report.bucket("p99").expect("p99 bucket present");
            let p999 = a.report.bucket("p99.9").expect("p99.9 bucket present");
            let (dominant, cycles) = p99.mean.dominant();
            TailSummary {
                arch: a.arch.clone(),
                p99: p99.threshold,
                p999: p999.threshold,
                dominant_p99: dominant.to_string(),
                dominant_share: cycles / p99.mean.total().max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Renders the tail rows as a table.
pub fn tail_table(rows: &[TailSummary]) -> TextTable {
    TextTable {
        id: "scorecard-tail".into(),
        title: "Tail latency at UR 0.15 (journey-sampled)".into(),
        headers: vec![
            "arch".into(),
            "p99 (cycles)".into(),
            "p99.9 (cycles)".into(),
            "dominant @ p99".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.arch.clone(),
                    r.p99.to_string(),
                    r.p999.to_string(),
                    format!("{} ({:.0}%)", r.dominant_p99, r.dominant_share * 100.0),
                ]
            })
            .collect(),
    }
}

/// Renders the scorecard as a table.
pub fn scorecard_table(claims: &[Claim]) -> TextTable {
    TextTable {
        id: "scorecard".into(),
        title: "Reproduction scorecard (paper claim vs measured)".into(),
        headers: vec![
            "claim".into(),
            "paper".into(),
            "measured".into(),
            "band".into(),
            "verdict".into(),
        ],
        rows: claims
            .iter()
            .map(|c| {
                vec![
                    c.what.to_string(),
                    c.paper.clone(),
                    format!("{:.1}", c.measured),
                    format!("[{:.0}, {:.0}]", c.band.0, c.band.1),
                    if c.passes() { "PASS".into() } else { "FAIL".into() },
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn every_claim_passes() {
        let claims = run_scorecard(quick_sim_config(), 4_000);
        assert!(claims.len() >= 13, "scorecard covers the headline claims");
        let failures: Vec<String> = claims
            .iter()
            .filter(|c| !c.passes())
            .map(|c| format!("{}: measured {:.1} outside {:?}", c.what, c.measured, c.band))
            .collect();
        assert!(failures.is_empty(), "failing claims:\n{}", failures.join("\n"));
    }

    #[test]
    fn tail_rows_cover_every_arch() {
        let rows = tail_summaries(quick_sim_config());
        assert_eq!(rows.len(), crate::arch::Arch::ALL.len());
        for r in &rows {
            assert!(r.p99 > 0 && r.p99 <= r.p999, "{}: {} vs {}", r.arch, r.p99, r.p999);
            assert!(!r.dominant_p99.is_empty());
            assert!(
                r.dominant_share > 0.0 && r.dominant_share <= 1.0,
                "{}: share {}",
                r.arch,
                r.dominant_share
            );
        }
        let text = tail_table(&rows).to_text();
        assert!(text.contains("p99.9"), "{text}");
    }
}
