//! Tables 1–3 (component areas, design parameters, delay validation).

use mira_noc::layers::via_count;
use mira_power::area::AreaModel;
use mira_power::delay::{DelayModel, INVERTER_DELAY_PS, UNBUFFERED_WIRE_PS_PER_MM};
use mira_power::geometry::PaperArch;

use crate::report::TextTable;

/// Table 1: router component areas (µm²) for the four architectures,
/// plus the via accounting.
pub fn table1() -> TextTable {
    let model = AreaModel::default();
    let archs = PaperArch::ALL;
    let headers: Vec<String> = std::iter::once("Area (um^2)".to_string())
        .chain(archs.iter().map(|a| a.name().to_string()))
        .collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let component = |name: &str, f: &dyn Fn(PaperArch) -> f64| -> Vec<String> {
        std::iter::once(name.to_string())
            .chain(archs.iter().map(|&a| format!("{:.0}", f(a))))
            .collect()
    };
    rows.push(component("RC", &|a| model.paper_areas(a).rc));
    rows.push(component("SA1", &|a| model.paper_areas(a).sa1));
    rows.push(component("SA2", &|a| model.paper_areas(a).sa2));
    rows.push(component("VA1", &|a| model.paper_areas(a).va1));
    rows.push(component("VA2", &|a| model.paper_areas(a).va2));
    rows.push(component("Crossbar", &|a| model.paper_areas(a).crossbar));
    rows.push(component("Buffer", &|a| model.paper_areas(a).buffer));
    rows.push(component("Total (per layer)", &|a| model.paper_areas(a).total()));

    let vias: Vec<String> = std::iter::once("Vias (2P+PV+Vk)".to_string())
        .chain(archs.iter().map(|&a| {
            let g = a.geometry();
            if g.layers > 1 {
                format!("{}", via_count(g.ports, g.vcs, g.buffer_depth))
            } else {
                "0".to_string()
            }
        }))
        .collect();
    rows.push(vias);

    let overhead: Vec<String> = std::iter::once("Via overhead/layer".to_string())
        .chain(archs.iter().map(|&a| format!("{:.1}%", model.via_overhead_fraction(a) * 100.0)))
        .collect();
    rows.push(overhead);

    TextTable { id: "table1".into(), title: "Router component area".into(), headers, rows }
}

/// Table 2: design parameters (delay constants and link lengths).
pub fn table2() -> TextTable {
    TextTable {
        id: "table2".into(),
        title: "Design parameters".into(),
        headers: vec!["parameter".into(), "value".into()],
        rows: vec![
            vec![
                "Link delay per mm (unbuffered)".into(),
                format!("{UNBUFFERED_WIRE_PS_PER_MM} ps"),
            ],
            vec!["Inverter delay (HSPICE)".into(), format!("{INVERTER_DELAY_PS} ps")],
            vec!["Inter-router link, 2DB".into(), "3.1 mm".into()],
            vec!["Inter-router link, 3DM".into(), "1.58 mm".into()],
        ],
    }
}

/// Table 3: delay validation for ST+LT pipeline combining at 2 GHz.
pub fn table3() -> TextTable {
    let model = DelayModel::default();
    let mut rows = Vec::new();
    for arch in [PaperArch::TwoDB, PaperArch::ThreeDM, PaperArch::ThreeDME] {
        let d = model.paper_stage_delays(arch);
        rows.push(vec![
            arch.name().to_string(),
            format!("{:.2}", d.xbar_ps),
            format!("{:.2}", d.link_ps),
            format!("{:.2}", d.combined_ps()),
            if model.can_combine_st_lt(d) { "Yes".to_string() } else { "No".to_string() },
        ]);
    }
    TextTable {
        id: "table3".into(),
        title: "Delay validation for pipeline combination (budget 500 ps)".into(),
        headers: vec![
            "arch".into(),
            "XBAR (ps)".into(),
            "Link (ps)".into(),
            "Combined (ps)".into(),
            "ST+LT combined".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_published_numbers() {
        let t = table1().to_text();
        for v in ["230400", "451584", "14400", "46656", "162973", "228162", "40743", "73338"] {
            assert!(t.contains(v), "missing {v} in:\n{t}");
        }
    }

    #[test]
    fn table3_verdicts() {
        let t = table3();
        assert_eq!(t.rows[0][4], "No", "2DB cannot combine");
        assert_eq!(t.rows[1][4], "Yes", "3DM combines");
        assert_eq!(t.rows[2][4], "Yes", "3DM-E combines");
    }

    #[test]
    fn table3_combined_values() {
        let t = table3();
        assert_eq!(t.rows[0][3], "688.05");
        assert_eq!(t.rows[1][3], "297.60");
        assert_eq!(t.rows[2][3], "492.33");
    }

    #[test]
    fn table2_renders() {
        let t = table2().to_text();
        assert!(t.contains("254"));
        assert!(t.contains("9.81"));
        assert!(t.contains("3.1 mm"));
    }
}
