//! Thermal experiment (paper Fig. 13(c)): temperature reduction from
//! layer shutdown.
//!
//! Methodology per paper §4.2.3: CPU cores burn 8 W (Sun Niagara at
//! 90 nm), 512 KB banks 0.1 W (CACTI); the NoC simulator supplies the
//! per-router network power; HotSpot computes the steady state. The
//! multi-layered configurations split the core/cache/router power evenly
//! over the four layers. We compare the chip with the network running
//! 50 % short flits + shutdown against 0 % short flits, at several
//! injection rates.

use mira_noc::sim::SimConfig;
use mira_noc::traffic::{PayloadProfile, UniformRandom};
use mira_thermal::{ChipModel, StackConfig};

use crate::arch::Arch;
use crate::experiments::common::{run_arch, EXPERIMENT_SEED};
use crate::report::BarFigure;

/// CPU core power, W (Sun Niagara core at 90 nm, paper §4.2.3).
pub const CPU_POWER_W: f64 = 8.0;
/// 512 KB L2 bank power, W (CACTI, paper §4.2.3).
pub const BANK_POWER_W: f64 = 0.1;

/// Builds the thermal model of one architecture's chip with the network
/// dissipating `network_power_w` in total.
///
/// Cell grid = node grid; multi-layer designs divide node power evenly
/// across their four layers (paper: "the processor and memory powers are
/// divided equally among the four layers").
pub fn chip_model(arch: Arch, network_power_w: f64) -> ChipModel {
    let n = arch.topology().num_nodes();
    chip_model_weighted(arch, network_power_w, &vec![1.0 / n as f64; n])
}

/// Like [`chip_model`], but distributes the network power over the
/// routers according to `weights` (one per node, summing to 1) — the
/// spatial activity profile measured by the simulator, so congested
/// routers heat their own tile.
///
/// # Panics
///
/// Panics if `weights` does not have one entry per node.
pub fn chip_model_weighted(arch: Arch, network_power_w: f64, weights: &[f64]) -> ChipModel {
    let topo = arch.topology();
    assert_eq!(weights.len(), topo.num_nodes(), "one weight per node");

    let (layers, rows, cols, pitch_mm) = match arch.paper_arch() {
        mira_power::geometry::PaperArch::TwoDB => (1, 6, 6, 3.1),
        mira_power::geometry::PaperArch::ThreeDB => (4, 3, 3, 3.1),
        _ => (4, 6, 6, 1.58),
    };
    let cell_m = pitch_mm * 1e-3;
    let mut chip = ChipModel::new(StackConfig::stacked(layers, rows, cols, cell_m, cell_m));

    let cpus = arch.cpu_nodes();
    #[allow(clippy::needless_range_loop)] // node indexes coords, cpus, and weights
    for node in 0..topo.num_nodes() {
        let c = topo.coords(mira_noc::ids::NodeId(node));
        let node_power =
            if cpus.iter().any(|&p| p.index() == node) { CPU_POWER_W } else { BANK_POWER_W }
                + network_power_w * weights[node];
        match arch.paper_arch() {
            mira_power::geometry::PaperArch::ThreeDB => {
                // One node per cell per layer; z counts up from the
                // bottom, the thermal stack counts layer 0 as the top.
                let layer = layers - 1 - c.z;
                chip.add_cell_power(layer, c.y, c.x, node_power);
            }
            mira_power::geometry::PaperArch::TwoDB => {
                chip.add_cell_power(0, c.y, c.x, node_power);
            }
            _ => {
                // Multi-layered: split evenly across the stack.
                for layer in 0..layers {
                    chip.add_cell_power(layer, c.y, c.x, node_power / layers as f64);
                }
            }
        }
    }
    chip
}

/// Runs `arch` under UR traffic with the given short-flit fraction
/// (shutdown active iff the fraction is non-zero) and returns the full
/// run (power + spatial activity).
pub fn network_run_at(
    arch: Arch,
    rate: f64,
    short_fraction: f64,
    sim_cfg: SimConfig,
) -> crate::experiments::common::RunResult {
    let payload = PayloadProfile::with_short_fraction(4, short_fraction);
    let w = UniformRandom::new(rate, 5, EXPERIMENT_SEED).with_payload(payload);
    run_arch(arch, short_fraction > 0.0, Box::new(w), sim_cfg)
}

/// Measures the network power of `arch` under UR traffic with the given
/// short-flit fraction (shutdown active iff the fraction is non-zero).
pub fn network_power_at(arch: Arch, rate: f64, short_fraction: f64, sim_cfg: SimConfig) -> f64 {
    network_run_at(arch, rate, short_fraction, sim_cfg).avg_power_w
}

/// Fig. 13(c): mean-temperature reduction of the 3DM chip when 50 % of
/// the flits are short (and shutdown is on) versus 0 %, at several
/// injection rates.
pub fn fig13c(rates: &[f64], sim_cfg: SimConfig) -> BarFigure {
    let arch = Arch::ThreeDM;
    let mut groups = Vec::new();
    for &rate in rates {
        let run_base = network_run_at(arch, rate, 0.0, sim_cfg);
        let run_shut = network_run_at(arch, rate, 0.5, sim_cfg);
        let pricing = arch.network_power();
        let w_base = pricing.router_power_weights(&run_base.report.per_router);
        let w_shut = pricing.router_power_weights(&run_shut.report.per_router);
        let t_base = chip_model_weighted(arch, run_base.avg_power_w, &w_base).solve();
        let t_shut = chip_model_weighted(arch, run_shut.avg_power_w, &w_shut).solve();
        let reduction_mean = t_base.mean_k() - t_shut.mean_k();
        let reduction_max = t_base.max_k() - t_shut.max_k();
        groups.push((format!("{:.0}%", rate * 100.0), vec![reduction_mean, reduction_max]));
    }
    BarFigure {
        id: "fig13c".into(),
        title: "Temperature reduction, 3DM with 50% short flits vs none".into(),
        group_label: "inj-rate".into(),
        bar_labels: vec!["mean dT (K)".into(), "max dT (K)".into()],
        groups,
        unit: "Kelvin".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn chip_power_accounts_cores_and_network() {
        let chip = chip_model(Arch::ThreeDM, 9.0);
        // 8 CPUs × 8 W + 28 banks × 0.1 W + 9 W network.
        let expected = 8.0 * 8.0 + 28.0 * 0.1 + 9.0;
        assert!((chip.total_power_w() - expected).abs() < 1e-9);
    }

    #[test]
    fn cpu_cells_are_hotter_than_cache_cells() {
        let chip = chip_model(Arch::TwoDB, 10.0);
        let t = chip.solve();
        // CPU at (1,2) vs corner cache at (0,0).
        assert!(t.cell_k(0, 2, 1) > t.cell_k(0, 0, 0) + 1.0);
    }

    #[test]
    fn threedb_cpu_columns_run_hotter() {
        let chip = chip_model(Arch::ThreeDB, 10.0);
        let t = chip.solve();
        // Node 35 = (2,2,z=3) is the lone cache on the CPU layer
        // (Fig. 10(c)); its column must run cooler than a CPU column.
        assert!(t.cell_k(0, 0, 0) > t.cell_k(0, 2, 2) + 0.5);
        // The layers below a CPU track it closely: the small cache +
        // router power they dissipate themselves conducts up through the
        // stack, leaving them marginally hotter, within a couple Kelvin.
        let delta = t.cell_k(3, 0, 0) - t.cell_k(0, 0, 0);
        assert!((0.0..3.0).contains(&delta), "column gradient {delta}");
    }

    /// The headline Fig. 13(c) shape: a sub-2 K but positive reduction
    /// that grows with injection rate.
    #[test]
    fn fig13c_reduction_positive_and_growing() {
        let fig = fig13c(&[0.05, 0.20], quick_sim_config());
        let low = fig.value("5%", "mean dT (K)").unwrap();
        let high = fig.value("20%", "mean dT (K)").unwrap();
        assert!(low > 0.0, "reduction at 5%: {low}");
        assert!(high > low, "reduction grows with rate: {low} vs {high}");
        assert!(high < 3.0, "reduction stays around a Kelvin: {high}");
    }
}

/// Result of a converged power–thermal co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoSimResult {
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Converged mean chip temperature, K.
    pub mean_k: f64,
    /// Converged hottest cell, K.
    pub max_k: f64,
    /// Dynamic network power, W (temperature-independent).
    pub dynamic_w: f64,
    /// Converged network leakage power, W.
    pub leakage_w: f64,
}

/// Iterates dynamic power → temperature → leakage → temperature … to a
/// fixed point (an extension beyond the paper, which evaluates dynamic
/// power only but names the leakage feedback as a 3D-stacking risk,
/// §2.2).
///
/// Converges quickly because the loop gain (∂leakage/∂T × thermal
/// resistance) is far below 1 at these power levels.
pub fn co_simulate(arch: Arch, rate: f64, short_fraction: f64, sim_cfg: SimConfig) -> CoSimResult {
    use mira_power::leakage::LeakageModel;

    let dynamic_w = network_power_at(arch, rate, short_fraction, sim_cfg);
    let leak = LeakageModel::NM90;
    let routers = arch.topology().num_nodes();

    let mut temp_k = mira_thermal::AMBIENT_K + 20.0;
    let mut leakage_w = 0.0;
    let mut last = (0.0, 0.0);
    for iteration in 1..=50 {
        leakage_w = leak.network_power_w(arch.paper_arch(), temp_k, routers);
        let t = chip_model(arch, dynamic_w + leakage_w).solve();
        last = (t.mean_k(), t.max_k());
        if (last.0 - temp_k).abs() < 0.01 {
            return CoSimResult {
                iterations: iteration,
                mean_k: last.0,
                max_k: last.1,
                dynamic_w,
                leakage_w,
            };
        }
        temp_k = last.0;
    }
    CoSimResult { iterations: 50, mean_k: last.0, max_k: last.1, dynamic_w, leakage_w }
}

#[cfg(test)]
mod cosim_tests {
    use super::*;
    use crate::experiments::common::quick_sim_config;

    #[test]
    fn co_simulation_converges() {
        let r = co_simulate(Arch::ThreeDM, 0.10, 0.0, quick_sim_config());
        assert!(r.iterations < 20, "iterations {}", r.iterations);
        assert!(r.mean_k > mira_thermal::AMBIENT_K);
        assert!(r.max_k >= r.mean_k);
        // Network leakage for 36 routers lands in the hundreds of mW.
        assert!((0.1..3.0).contains(&r.leakage_w), "leakage {}", r.leakage_w);
        assert!(r.dynamic_w > r.leakage_w, "dynamic dominates at 90 nm activity");
    }

    #[test]
    fn leakage_feedback_raises_temperature() {
        let sim = quick_sim_config();
        let with = co_simulate(Arch::ThreeDB, 0.10, 0.0, sim);
        // Without leakage: single thermal solve on dynamic power only.
        let without = chip_model(Arch::ThreeDB, with.dynamic_w).solve().mean_k();
        assert!(with.mean_k > without, "{} vs {}", with.mean_k, without);
        assert!(with.mean_k - without < 3.0, "feedback is a perturbation, not a runaway");
    }

    #[test]
    fn shutdown_also_cuts_leakage_via_temperature() {
        let sim = quick_sim_config();
        let dense = co_simulate(Arch::ThreeDM, 0.20, 0.0, sim);
        let gated = co_simulate(Arch::ThreeDM, 0.20, 0.5, sim);
        assert!(gated.mean_k < dense.mean_k);
        assert!(gated.leakage_w <= dense.leakage_w);
    }
}
