#![warn(missing_docs)]
//! # mira — reproduction of "MIRA: A Multi-Layered On-Chip Interconnect
//! Router Architecture" (Park et al., ISCA 2008)
//!
//! This facade crate ties the subsystem crates together:
//!
//! * [`mira_noc`] — the cycle-accurate NoC simulator,
//! * [`mira_power`] — Orion-style power/area/delay models,
//! * [`mira_thermal`] — the HotSpot-style thermal solver,
//! * [`mira_traffic`] — synthetic workloads and trace handling,
//! * [`mira_nuca`] — the CMP cache-coherence trace generator,
//!
//! and adds the paper-specific layer:
//!
//! * [`arch`] — the six evaluated architectures (2DB, 3DB, 3DM,
//!   3DM(NC), 3DM-E, 3DM-E(NC)) with their topologies, layouts, pipeline
//!   decisions and power models;
//! * [`experiments`] — one runner per table/figure of the paper;
//! * [`report`] — text rendering of figures and tables;
//! * [`error`] — host-side error handling for the harness around the
//!   simulations (IO, parsing, failed batches).
//!
//! ## Quick start
//!
//! ```
//! use mira::arch::Arch;
//! use mira::experiments::{quick_sim_config, run_arch, EXPERIMENT_SEED};
//! use mira::noc::traffic::UniformRandom;
//!
//! let workload = UniformRandom::new(0.05, 5, EXPERIMENT_SEED);
//! let run = run_arch(Arch::ThreeDME, false, Box::new(workload), quick_sim_config());
//! println!("3DM-E: {:.1} cycles, {:.2} W", run.report.avg_latency, run.avg_power_w);
//! ```

pub mod arch;
pub mod error;
pub mod experiments;
pub mod report;

pub use mira_noc as noc;
pub use mira_nuca as nuca;
pub use mira_power as power;
pub use mira_thermal as thermal;
pub use mira_traffic as traffic;

pub use arch::Arch;
