//! Plain-text rendering of experiment results: figures (series of
//! points), bar groups, and tables — the shapes the paper's figures and
//! tables take.

use serde::{Deserialize, Serialize};

/// One (x, y) sample of a curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Independent variable (e.g. injection rate).
    pub x: f64,
    /// Dependent variable (e.g. latency in cycles).
    pub y: f64,
}

/// A labelled curve (one architecture's line in a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Samples in x order.
    pub points: Vec<CurvePoint>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<CurvePoint>) -> Self {
        Series { label: label.into(), points }
    }

    /// The y value at a given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| (p.x - x).abs() < 1e-9).map(|p| p.y)
    }
}

/// A line-plot figure (Figs. 11(a)-(b), 12(a)-(b), 12(d)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier, e.g. `"fig11a"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the figure as an aligned text table: one row per x, one
    /// column per series.
    pub fn to_text(&self) -> String {
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|p| p.x)).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = format!("# {} — {}\n", self.id, self.title);
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{:>12}", s.label));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x:>12.3}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!("{y:>12.3}")),
                    None => out.push_str(&format!("{:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("({})\n", self.y_label));
        out
    }
}

/// A grouped-bar figure (Figs. 1, 2, 9, 11(c)-(d), 12(c), 13).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarFigure {
    /// Identifier, e.g. `"fig11c"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Label of the group axis (e.g. "application").
    pub group_label: String,
    /// Bar labels within each group (e.g. architectures).
    pub bar_labels: Vec<String>,
    /// Groups: (group name, one value per bar label).
    pub groups: Vec<(String, Vec<f64>)>,
    /// Unit of the values.
    pub unit: String,
}

impl BarFigure {
    /// Renders as an aligned text table.
    pub fn to_text(&self) -> String {
        let group_w = self
            .groups
            .iter()
            .map(|(g, _)| g.len())
            .chain(std::iter::once(self.group_label.len()))
            .max()
            .unwrap_or(0)
            + 2;
        let col_w: Vec<usize> = self.bar_labels.iter().map(|b| (b.len() + 2).max(12)).collect();
        let mut out = format!("# {} — {} ({})\n", self.id, self.title, self.unit);
        out.push_str(&format!("{:>group_w$}", self.group_label));
        for (b, w) in self.bar_labels.iter().zip(&col_w) {
            out.push_str(&format!("{b:>w$}", w = w));
        }
        out.push('\n');
        for (group, values) in &self.groups {
            out.push_str(&format!("{group:>group_w$}"));
            for (v, w) in values.iter().zip(&col_w) {
                out.push_str(&format!("{v:>w$.3}", w = w));
            }
            out.push('\n');
        }
        out
    }

    /// The value of one bar.
    pub fn value(&self, group: &str, bar: &str) -> Option<f64> {
        let bi = self.bar_labels.iter().position(|b| b == bar)?;
        self.groups.iter().find(|(g, _)| g == group).map(|(_, v)| v[bi])
    }
}

/// A plain table (Tables 1–3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextTable {
    /// Identifier, e.g. `"table1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (first cell is the row label).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Renders as aligned text.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("# {} — {}\n", self.id, self.title);
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!("{h:>width$}  ", width = widths[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                out.push_str(&format!("{cell:>width$}  ", width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_all_series() {
        let fig = Figure {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "load".into(),
            y_label: "cycles".into(),
            series: vec![
                Series::new(
                    "a",
                    vec![CurvePoint { x: 0.1, y: 10.0 }, CurvePoint { x: 0.2, y: 20.0 }],
                ),
                Series::new("b", vec![CurvePoint { x: 0.1, y: 11.0 }]),
            ],
        };
        let text = fig.to_text();
        assert!(text.contains("figX"));
        assert!(text.contains("10.000"));
        assert!(text.contains('-'), "missing samples render as dashes");
    }

    #[test]
    fn series_lookup() {
        let s = Series::new("a", vec![CurvePoint { x: 0.1, y: 5.0 }]);
        assert_eq!(s.y_at(0.1), Some(5.0));
        assert_eq!(s.y_at(0.3), None);
    }

    #[test]
    fn bar_figure_lookup_and_text() {
        let fig = BarFigure {
            id: "figY".into(),
            title: "bars".into(),
            group_label: "app".into(),
            bar_labels: vec!["2DB".into(), "3DM".into()],
            groups: vec![("tpcw".into(), vec![1.0, 0.7])],
            unit: "normalised".into(),
        };
        assert_eq!(fig.value("tpcw", "3DM"), Some(0.7));
        assert_eq!(fig.value("tpcw", "zzz"), None);
        assert!(fig.to_text().contains("tpcw"));
    }

    #[test]
    fn table_aligns_columns() {
        let t = TextTable {
            id: "t1".into(),
            title: "areas".into(),
            headers: vec!["component".into(), "2DB".into()],
            rows: vec![vec!["crossbar".into(), "230400".into()]],
        };
        let text = t.to_text();
        assert!(text.contains("crossbar"));
        assert!(text.contains("230400"));
    }
}
