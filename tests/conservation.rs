//! Cross-crate conservation and determinism invariants.

use mira::arch::Arch;
use mira::experiments::common::{quick_sim_config, run_arch, EXPERIMENT_SEED};
use mira::noc::flit::FlitData;
use mira::noc::ids::NodeId;
use mira::noc::network::Network;
use mira::noc::packet::{Packet, PacketClass, PacketId};
use mira::noc::traffic::UniformRandom;

/// Every injected flit is eventually ejected on every architecture, at a
/// drainable load.
#[test]
fn all_flits_delivered_all_archs() {
    for arch in Arch::ALL {
        let w = UniformRandom::new(0.08, 5, EXPERIMENT_SEED);
        let r = run_arch(arch, false, Box::new(w), quick_sim_config());
        assert!(!r.report.saturated, "{arch} saturated at 8%");
        assert_eq!(r.report.packets_created, r.report.packets_ejected, "{arch}");
    }
}

/// Identical seeds give bit-identical results, independently of process
/// state.
#[test]
fn cross_run_determinism() {
    let run = || {
        let w = UniformRandom::new(0.12, 5, 99);
        run_arch(Arch::ThreeDME, true, Box::new(w), quick_sim_config())
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report.avg_latency.to_bits(), b.report.avg_latency.to_bits());
    assert_eq!(a.report.counters, b.report.counters);
    assert_eq!(a.avg_power_w.to_bits(), b.avg_power_w.to_bits());
}

/// Flits in fabric + queues + ejected equals flits injected, cycle by
/// cycle, on the express topology (the most complex wiring).
#[test]
fn cycle_by_cycle_conservation_on_express_mesh() {
    let arch = Arch::ThreeDME;
    let mut net = Network::new(arch.topology(), arch.network_config(false));
    let mut total = 0usize;
    for i in 0..40u64 {
        let src = (i as usize * 7) % 36;
        let dst = (src + 1 + (i as usize * 11) % 35) % 36;
        let len = 1 + (i as usize % 5);
        total += len;
        net.enqueue_packet(Packet {
            id: PacketId(i),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if len == 1 { PacketClass::Ack } else { PacketClass::DataResponse },
            payload: (0..len).map(|_| FlitData::dense(4)).collect(),
            created_at: 0,
        });
    }
    let mut ejected = 0usize;
    for c in 0..5_000 {
        net.step(c);
        ejected += net.take_ejected().len();
        assert_eq!(
            ejected + net.flits_in_fabric() + net.flits_in_source_queues(),
            total,
            "cycle {c}"
        );
        if net.is_drained() {
            break;
        }
    }
    assert_eq!(ejected, total);
}

/// Saturation is honestly reported: past-capacity loads flag it and
/// eject fewer packets than created.
#[test]
fn saturation_reported_not_hidden() {
    let w = UniformRandom::new(0.8, 5, EXPERIMENT_SEED);
    let r = run_arch(Arch::TwoDB, false, Box::new(w), quick_sim_config());
    assert!(r.report.saturated);
    assert!(r.report.packets_ejected < r.report.packets_created);
    // Throughput reflects acceptance, not the offered 0.8.
    assert!(r.report.throughput < 0.5, "accepted {}", r.report.throughput);
}

/// Layer shutdown never changes timing — only the energy accounting.
#[test]
fn shutdown_is_timing_neutral() {
    let mk = |shutdown| {
        let w = UniformRandom::new(0.10, 5, 7)
            .with_payload(mira::noc::traffic::PayloadProfile::with_short_fraction(4, 0.5));
        run_arch(Arch::ThreeDM, shutdown, Box::new(w), quick_sim_config())
    };
    let off = mk(false);
    let on = mk(true);
    assert_eq!(off.report.avg_latency.to_bits(), on.report.avg_latency.to_bits());
    assert_eq!(off.report.counters.flits_ejected, on.report.counters.flits_ejected);
    assert!(on.avg_power_w < off.avg_power_w, "gating must save energy");
}
