//! Integration tests for the extension features (adaptive routing,
//! pipeline depths, histograms, co-simulation, trace portability).

use mira::arch::Arch;
use mira::experiments::common::{quick_sim_config, run_arch, EXPERIMENT_SEED};
use mira::experiments::latency::app_trace;
use mira::noc::adaptive::{AdaptiveMesh2D, TurnModel};
use mira::noc::config::PipelineDepth;
use mira::noc::sim::Simulator;
use mira::noc::topology::Mesh2D;
use mira::noc::traffic::UniformRandom;
use mira::traffic::workloads::Application;

/// The same logical protocol event stream maps onto every layout: the
/// per-class packet counts of an application trace are identical across
/// architectures (only node ids differ) — the property that makes the
/// normalised trace figures an apples-to-apples comparison.
#[test]
fn traces_are_logically_identical_across_layouts() {
    let count_classes = |arch: Arch| {
        let trace = app_trace(Application::Zeus, arch, 4_000);
        let mut counts = vec![0usize; 6];
        for r in &trace {
            counts[r.class.table_index()] += 1;
        }
        (trace.len(), counts)
    };
    let (n_2db, c_2db) = count_classes(Arch::TwoDB);
    let (n_3db, c_3db) = count_classes(Arch::ThreeDB);
    let (n_3me, c_3me) = count_classes(Arch::ThreeDME);
    assert_eq!(n_2db, n_3db);
    assert_eq!(n_2db, n_3me);
    assert_eq!(c_2db, c_3db);
    assert_eq!(c_2db, c_3me);
}

/// Adaptive routing delivers the same traffic as X-Y with identical
/// packet counts and no deadlock, across all three turn models.
#[test]
fn adaptive_routing_end_to_end() {
    let base = {
        let mut sim = Simulator::new(
            Box::new(Mesh2D::new(6, 6)),
            Arch::ThreeDM.network_config(false),
            quick_sim_config(),
        );
        sim.run(Box::new(UniformRandom::new(0.10, 5, EXPERIMENT_SEED)))
    };
    assert!(!base.saturated);

    for model in TurnModel::ALL {
        let mut sim = Simulator::new(
            Box::new(AdaptiveMesh2D::new(Mesh2D::new(6, 6), model)),
            Arch::ThreeDM.network_config(false),
            quick_sim_config(),
        );
        let report = sim.run(Box::new(UniformRandom::new(0.10, 5, EXPERIMENT_SEED)));
        assert!(!report.saturated, "{model}");
        assert_eq!(report.packets_created, base.packets_created, "{model}: same workload");
        assert_eq!(report.packets_ejected, report.packets_created, "{model}: all delivered");
        // Minimal routing: hop counts match the deterministic router's.
        assert!((report.avg_hops - base.avg_hops).abs() < 0.05, "{model}");
    }
}

/// Pipeline-depth modes preserve correctness under load: same packets,
/// all delivered, strictly decreasing latency with depth.
#[test]
fn pipeline_depths_deliver_under_load() {
    let mut latencies = Vec::new();
    for depth in [
        PipelineDepth::FourStage,
        PipelineDepth::ThreeStageSpeculative,
        PipelineDepth::TwoStageLookahead,
    ] {
        let mut cfg = Arch::ThreeDM.network_config(false);
        cfg.router.pipeline = cfg.router.pipeline.with_depth(depth);
        let mut sim = Simulator::new(Arch::ThreeDM.topology(), cfg, quick_sim_config());
        let report = sim.run(Box::new(UniformRandom::new(0.12, 5, EXPERIMENT_SEED)));
        assert!(!report.saturated, "{depth:?}");
        assert_eq!(report.packets_created, report.packets_ejected, "{depth:?}");
        latencies.push(report.avg_latency);
    }
    assert!(latencies[0] > latencies[1] && latencies[1] > latencies[2], "{latencies:?}");
}

/// The histogram is consistent with the scalar statistics the report
/// carries.
#[test]
fn histogram_consistent_with_mean() {
    let w = UniformRandom::new(0.08, 5, EXPERIMENT_SEED);
    let r = run_arch(Arch::TwoDB, false, Box::new(w), quick_sim_config());
    let h = &r.report.histogram;
    assert_eq!(h.count(), r.report.packets_ejected);
    assert!((h.mean() - r.report.avg_latency).abs() < 1e-9);
    let p50 = h.p50().unwrap() as f64;
    let p99 = h.p99().unwrap() as f64;
    assert!(p50 <= r.report.avg_latency * 1.5);
    assert!(p99 >= r.report.avg_latency);
}
