//! End-to-end acceptance checks for the fault-injection subsystem
//! (DESIGN.md §12): graceful degradation at the architecture level.
//!
//! The headline claim: a permanent single-link failure costs the
//! network a few packets in flight at the moment of death, not its
//! function — ≥ 99% of packets are still delivered under sub-saturation
//! uniform-random traffic, on the planar multi-layer mesh, on the
//! stacked 3D mesh (a severed inter-layer via), and on the express mesh
//! (a dead express channel degrades to baseline-mesh routing).

use mira::arch::Arch;
use mira::experiments::common::{quick_sim_config, run_arch, RunResult, EXPERIMENT_SEED};
use mira::experiments::faults::{fault_rates_ppm, fault_sweep, FAULT_ARCHS};
use mira::noc::fault::FaultConfig;
use mira::noc::ids::NodeId;
use mira::noc::topology::port;
use mira::noc::traffic::UniformRandom;

/// Runs `arch` at UR 0.10 with one permanent link kill at cycle 0.
fn run_with_kill(arch: Arch, node: usize, port: usize) -> RunResult {
    let faults = FaultConfig::disabled().with_kill(node, port, 0).with_seed(EXPERIMENT_SEED);
    let workload = UniformRandom::new(0.10, 5, EXPERIMENT_SEED);
    run_arch(arch, false, Box::new(workload), quick_sim_config().with_faults(faults))
}

fn delivered_fraction(r: &RunResult) -> f64 {
    r.report.packets_ejected as f64 / r.report.packets_created.max(1) as f64
}

#[test]
fn single_link_kill_on_3dm_delivers_99_percent() {
    let r = run_with_kill(Arch::ThreeDM, 14, port::EAST.index());
    let f = delivered_fraction(&r);
    assert!(f >= 0.99, "3DM delivered only {:.4} with one dead link", f);
    assert_eq!(r.report.faults.links_killed, 1);
    assert!(r.report.faults.reroutes > 0, "traffic must be steered around the dead link");
    assert!(!r.report.saturated, "one dead link must not saturate a 0.10 load");
}

#[test]
fn severed_via_on_stacked_mesh_delivers_99_percent() {
    // Arch::ThreeDB is the 3×3×4 stacked mesh; port UP is an
    // inter-layer via. Killing it models a TSV failure.
    let r = run_with_kill(Arch::ThreeDB, 4, port::UP.index());
    let f = delivered_fraction(&r);
    assert!(f >= 0.99, "3DB delivered only {:.4} with a severed via", f);
    assert_eq!(r.report.faults.links_killed, 1);
}

#[test]
fn dead_express_link_degrades_to_mesh_routing() {
    // Find a node with an east express channel and kill it: the
    // express mesh must fall back to its embedded baseline mesh.
    let topo = Arch::ThreeDME.topology();
    let node = (0..topo.num_nodes())
        .find(|&n| topo.neighbor(NodeId(n), port::EAST_EXPRESS).is_some())
        .expect("express mesh has express links");
    let r = run_with_kill(Arch::ThreeDME, node, port::EAST_EXPRESS.index());
    let f = delivered_fraction(&r);
    assert!(f >= 0.99, "3DM-E delivered only {:.4} with a dead express link", f);
    assert_eq!(r.report.faults.links_killed, 1);
    assert!(!r.report.saturated);
}

#[test]
fn fault_sweep_degrades_monotonically_without_wedging() {
    let rates = fault_rates_ppm(true);
    let sweep = fault_sweep(&rates, quick_sim_config());
    for arch in FAULT_ARCHS {
        let name = arch.name();
        let d = sweep.delivered.series.iter().find(|s| s.label == name).expect("series");
        let l = sweep.latency.series.iter().find(|s| s.label == name).expect("series");
        assert_eq!(d.points.len(), rates.len(), "{name}: every point completed");
        assert!((d.points[0].y - 1.0).abs() < 1e-12, "{name}: fault-free baseline is lossless");
        for w in d.points.windows(2) {
            assert!(
                w[1].y <= w[0].y + 1e-12,
                "{name}: delivery must not improve with more faults ({} -> {})",
                w[0].y,
                w[1].y
            );
        }
        for p in &l.points {
            assert!(p.y.is_finite() && p.y > 0.0, "{name}: latency finite at {} ppm", p.x);
        }
        let last = l.points.last().expect("points");
        assert!(
            last.y > l.points[0].y,
            "{name}: retransmission pressure must show up as latency ({} !> {})",
            last.y,
            l.points[0].y
        );
    }
}
