//! Golden-bits differential harness for the data-oriented core rewrite
//! (DESIGN.md §14).
//!
//! Where `tests/telemetry_golden.rs` pins a handful of scalar
//! observables, this suite pins the **entire `SimReport`** — stats,
//! stall causes, metrics windows, journey attribution, and fault
//! accounting — as pretty-printed JSON, byte for byte, for all four
//! hardware design points at two loads plus two fault-injected points.
//! The snapshots under `tests/golden_core/` were captured from the
//! pre-rewrite (per-router heap structures) core; the struct-of-arrays
//! core must reproduce them exactly. Any drift means the rewrite
//! changed simulated behaviour, not just its memory layout.
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```text
//! MIRA_BLESS=1 cargo test --test golden_core
//! ```

use std::path::PathBuf;

use mira::arch::Arch;
use mira::experiments::common::{run_arch, RunResult, EXPERIMENT_SEED};
use mira::experiments::quick_sim_config;
use mira::noc::anomaly::AnomalyConfig;
use mira::noc::fault::FaultConfig;
use mira_noc::telemetry::TelemetryConfig;
use mira_noc::traffic::{PayloadProfile, UniformRandom};
use mira_noc::SimConfig;
use serde::Serialize;

/// One pinned design point.
struct Point {
    name: &'static str,
    arch: Arch,
    rate: f64,
    /// Short-flit payload fraction; > 0 also turns on layer shutdown,
    /// matching how the power experiments drive the 3D architectures.
    short: f64,
    faults: Option<FaultConfig>,
}

/// Everything one golden file pins. The report is the full `SimReport`;
/// the power numbers come from the activity-counter pricing on top, and
/// are pinned as IEEE-754 bit patterns so the JSON comparison is exact
/// even if a formatter ever changes float printing.
#[derive(Serialize)]
struct GoldenPoint {
    name: String,
    arch: String,
    rate: f64,
    short_fraction: f64,
    layer_shutdown: bool,
    faulted: bool,
    avg_power_bits: u64,
    pdp_bits: u64,
    report: mira_noc::SimReport,
}

/// The telemetry switches used for every golden run: windowed metrics
/// and journey sampling on (so `windows`, `stalls`, and `journeys` are
/// populated in the report), event tracing off (trace events never land
/// in `SimReport`).
fn golden_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        metrics_window: 500,
        trace_capacity: 0,
        journey_sample_ppm: 250_000,
        journey_seed: 0,
    }
}

fn points() -> Vec<Point> {
    let mut pts = Vec::new();
    for arch in Arch::HARDWARE {
        pts.push(Point {
            name: match arch {
                Arch::TwoDB => "2DB_ur010",
                Arch::ThreeDB => "3DB_ur010",
                Arch::ThreeDM => "3DM_ur010",
                _ => "3DME_ur010",
            },
            arch,
            rate: 0.10,
            short: 0.0,
            faults: None,
        });
        pts.push(Point {
            name: match arch {
                Arch::TwoDB => "2DB_ur030_short",
                Arch::ThreeDB => "3DB_ur030_short",
                Arch::ThreeDM => "3DM_ur030_short",
                _ => "3DME_ur030_short",
            },
            arch,
            rate: 0.30,
            short: 0.5,
            faults: None,
        });
    }
    // Two fault-injected points: transient corruption with a retry
    // budget plus an explicit link kill with rerouting, exercising the
    // ARQ window, the purge/reroute paths, and the fault counters.
    let faults = FaultConfig::disabled()
        .with_transient(2_000)
        .with_kill(14, 1, 400)
        .with_max_retries(4)
        .with_reroute(true)
        .with_seed(EXPERIMENT_SEED);
    pts.push(Point {
        name: "2DB_ur010_faults",
        arch: Arch::TwoDB,
        rate: 0.10,
        short: 0.0,
        faults: Some(faults),
    });
    pts.push(Point {
        name: "3DME_ur010_faults",
        arch: Arch::ThreeDME,
        rate: 0.10,
        short: 0.0,
        faults: Some(faults),
    });
    pts
}

// `shards: 0` defers to the `MIRA_SHARDS` environment default, so CI
// can re-run the whole suite with a process-wide shard count and the
// snapshots must still match.
fn run_point(p: &Point, anomaly: AnomalyConfig) -> RunResult {
    run_point_sharded(p, anomaly, 0)
}

fn run_point_sharded(p: &Point, anomaly: AnomalyConfig, shards: usize) -> RunResult {
    let mut cfg: SimConfig = quick_sim_config()
        .with_telemetry(golden_telemetry())
        .with_anomaly(anomaly)
        .with_shards(shards);
    if let Some(f) = p.faults {
        cfg = cfg.with_faults(f);
    }
    let mut w = UniformRandom::new(p.rate, 5, EXPERIMENT_SEED);
    if p.short > 0.0 {
        w = w.with_payload(PayloadProfile::with_short_fraction(4, p.short));
    }
    run_arch(p.arch, p.short > 0.0, Box::new(w), cfg)
}

fn golden_json(p: &Point, r: &RunResult) -> String {
    let golden = GoldenPoint {
        name: p.name.to_string(),
        arch: p.arch.name().to_string(),
        rate: p.rate,
        short_fraction: p.short,
        layer_shutdown: p.short > 0.0,
        faulted: p.faults.is_some(),
        avg_power_bits: r.avg_power_w.to_bits(),
        pdp_bits: r.pdp.to_bits(),
        report: r.report.clone(),
    };
    let mut s = serde_json::to_string_pretty(&golden).expect("report serializes");
    s.push('\n');
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_core")
        .join(format!("{name}.json"))
}

fn check_points(pts: &[Point]) {
    check_points_with(pts, AnomalyConfig::disabled());
}

fn check_points_with(pts: &[Point], anomaly: AnomalyConfig) {
    let bless = std::env::var_os("MIRA_BLESS").is_some();
    for p in pts {
        let r = run_point(p, anomaly);
        let actual = golden_json(p, &r);
        let path = golden_path(p.name);
        if bless {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
            std::fs::write(&path, &actual).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden snapshot {} ({e}); run `MIRA_BLESS=1 cargo test --test golden_core` to record",
                p.name,
                path.display()
            )
        });
        if actual != expected {
            // Find the first diverging line for a readable failure.
            let (mut line, mut got, mut want) = (0usize, "", "");
            for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
                if a != e {
                    (line, got, want) = (i + 1, a, e);
                    break;
                }
            }
            panic!(
                "{}: SimReport drifted from the pre-rewrite golden bits\n  first diff at {}:{line}\n    golden: {want}\n    actual: {got}\n  (MIRA_BLESS=1 re-records, but only after an intentional behaviour change)",
                p.name,
                path.display()
            );
        }
    }
}

/// The four hardware design points at two loads reproduce the
/// pre-rewrite `SimReport` byte for byte: stats, stall causes, windowed
/// metrics, journey attribution, and (all-zero) fault counters.
#[test]
fn hardware_points_match_golden_bits() {
    let pts = points();
    check_points(&pts[..8]);
}

/// The fault-injected points reproduce the pre-rewrite fault accounting
/// byte for byte: transient verdicts, retransmissions, drops, reroutes.
#[test]
fn fault_points_match_golden_bits() {
    let pts = points();
    check_points(&pts[8..]);
}

/// With host observability collecting (DESIGN.md §15), the golden bits
/// are *still* unchanged: phase timers and watermark gauges observe the
/// simulator, never the simulation, so `SimReport` and the power bits
/// must stay byte-identical to the obs-off snapshots.
#[test]
fn obs_enabled_matches_golden_bits() {
    mira_obs::set_enabled(true);
    let pts = points();
    // One fault-free and one fault-injected point cover both report
    // shapes; the full matrix is pinned by the obs-off tests above.
    check_points(&pts[..2]);
    check_points(&pts[8..9]);
    mira_obs::set_enabled(false);
}

/// With the full flight-recorder detector suite armed (DESIGN.md §17),
/// the golden bits are *still* unchanged: on a healthy run no detector
/// fires, the recorder only reads fabric state, and `SimReport` omits
/// the anomaly section entirely at zero firings — so the snapshots
/// match byte for byte, fault-injected points included.
#[test]
fn anomaly_armed_matches_golden_bits() {
    let pts = points();
    // One fault-free and one fault-injected point cover both report
    // shapes (the fault point also exercises the fault-storm budget
    // against real transient traffic).
    check_points_with(&pts[..2], AnomalyConfig::detect());
    check_points_with(&pts[8..9], AnomalyConfig::detect());
}

/// Sharded stepping (DESIGN.md §18) is bit-identical to sequential
/// stepping: running the same design points split across N worker
/// shards must reproduce the committed golden snapshots — which pin the
/// sequential output — byte for byte, including the IEEE-754 power
/// bits. Two shards cover the full fault-free matrix; four and eight
/// shards cover one load per architecture (the 6x6 2D meshes cap out
/// at fewer routers per shard, exercising unbalanced partitions).
#[test]
fn sharded_points_match_golden_bits() {
    let pts = points();
    for p in &pts[..8] {
        let r = run_point_sharded(p, AnomalyConfig::disabled(), 2);
        assert_matches_golden(p, &r);
    }
    for &shards in &[4usize, 8] {
        for p in pts.iter().take(8).step_by(2) {
            let r = run_point_sharded(p, AnomalyConfig::disabled(), shards);
            assert_matches_golden(p, &r);
        }
    }
}

fn assert_matches_golden(p: &Point, r: &RunResult) {
    let actual = golden_json(p, r);
    let path = golden_path(p.name);
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: missing golden snapshot {} ({e})", p.name, path.display()));
    assert_eq!(actual, expected, "{}: sharded run drifted from the sequential golden bits", p.name);
}

/// Sanity: the golden recipe actually populates every report section it
/// claims to pin (guards against a silent telemetry regression making
/// the snapshots vacuous).
#[test]
fn golden_recipe_populates_all_sections() {
    let pts = points();
    let base = run_point(&pts[0], AnomalyConfig::disabled());
    assert!(!base.report.windows.is_empty(), "metrics windows collected");
    assert!(base.report.journeys.as_ref().is_some_and(|j| j.sampled > 0), "journeys sampled");
    assert!(base.report.stalls.stalled > 0, "stall causes counted");
    let faulted = run_point(&pts[8], AnomalyConfig::disabled());
    assert!(faulted.report.faults.transient_faults > 0, "transients injected");
    assert!(faulted.report.faults.links_killed > 0, "link killed");
}
