//! Acceptance tests for the packet-journey subsystem on the paper's
//! architectures: on a *saturated* 3DM run every sampled packet's spans
//! account for 100% of its measured latency, and the aggregated
//! tail-attribution buckets account for 100% of their mean latency.

use mira::arch::Arch;
use mira::experiments::common::EXPERIMENT_SEED;
use mira_noc::sim::{SimConfig, Simulator};
use mira_noc::telemetry::TelemetryConfig;
use mira_noc::traffic::UniformRandom;

/// A 3DM run past saturation with every packet sampled.
fn saturated_3dm() -> Simulator {
    let arch = Arch::ThreeDM;
    let sim_cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 1_000,
        drain_cycles: 500,
        ..SimConfig::default()
    }
    .with_telemetry(TelemetryConfig::disabled().with_journeys(1_000_000));
    let mut sim = Simulator::new(arch.topology(), arch.network_config(false), sim_cfg);
    let report = sim.run(Box::new(UniformRandom::new(0.9, 5, EXPERIMENT_SEED)));
    assert!(report.saturated, "0.9 flits/node/cycle must saturate 3DM");
    sim
}

#[test]
fn saturated_3dm_journeys_account_for_full_latency() {
    let sim = saturated_3dm();
    let journeys = sim.journeys();
    assert!(journeys.len() > 100, "a saturated run completes many sampled journeys");
    for j in journeys {
        assert_eq!(
            j.span_sum(),
            j.latency(),
            "packet {}: journey spans must account for 100% of its latency",
            j.packet
        );
    }
    // Packets still in flight at the drain deadline stay pending, they
    // are not mis-closed.
    let recorder = sim.network().journeys().expect("recorder installed");
    assert!(recorder.pending() > 0, "a saturated run strands packets in flight");
}

#[test]
fn saturated_3dm_attribution_sums_to_bucket_means() {
    let sim = saturated_3dm();
    let report = sim.network().journeys().expect("recorder installed").report();
    assert_eq!(report.sample_ppm, 1_000_000);
    assert!(report.sampled > 0);
    assert_eq!(report.buckets.len(), 4);
    for b in &report.buckets {
        assert!(b.count > 0, "{}: bucket populated", b.label);
        assert!(
            (b.mean.total() - b.mean_latency).abs() < 1e-6,
            "{}: component means {} must sum to the bucket mean {}",
            b.label,
            b.mean.total(),
            b.mean_latency
        );
        for c in &b.per_class {
            assert!(c.count > 0, "{}: class rows are populated", b.label);
        }
    }
    // Saturation means queueing dominates the tail far beyond the
    // pipeline floor.
    let p99 = report.bucket("p99").expect("p99 bucket");
    let (dominant, _) = p99.mean.dominant();
    assert!(
        dominant == "source_queue" || dominant == "no_credit" || dominant == "sa_loss",
        "a saturated tail is queue-dominated, got {dominant}"
    );
}
