//! Acceptance tests for host-side observability (DESIGN.md §15): the
//! phase profiler accounts for ≥ 95% of hot-loop wall time, every
//! runner batch appends a complete ledger entry, and the batch summary
//! carries provenance and per-worker accounting.
//!
//! Tests that flip the global obs switch live in one `#[test]` so no
//! concurrent test observes a half-configured process.

use mira::arch::Arch;
use mira::experiments::common::{quick_sim_config, run_arch, EXPERIMENT_SEED};
use mira::experiments::runner::{derive_seed, ProgressEvent, Runner, SimPoint};
use mira_noc::traffic::UniformRandom;
use serde::Serialize;

fn ur_point(label: &str, rate: f64, seed: u64) -> SimPoint {
    SimPoint::new(label, seed, move |s| {
        run_arch(Arch::TwoDB, false, Box::new(UniformRandom::new(rate, 5, s)), quick_sim_config())
    })
}

/// The batch summary carries build provenance, per-worker busy/idle
/// accounting, queue waits and the arena watermark — with observability
/// *off* (they are plain host-side measurements, always available).
#[test]
fn summary_carries_provenance_and_worker_accounting() {
    let seed = derive_seed(EXPERIMENT_SEED, 0);
    let points = vec![
        ur_point("a", 0.05, seed),
        ur_point("b", 0.05, seed),
        ur_point("c", 0.10, seed),
        ur_point("d", 0.10, seed),
    ];
    // Explicit temp ledger path: if another test has obs enabled while
    // this batch runs, the entry must not land in the repo's ledger.
    let scratch =
        std::env::temp_dir().join(format!("mira_obs_claims_off_{}.jsonl", std::process::id()));
    let batch = Runner::with_jobs(2).ledger_path(&scratch).exhibit("obs_claims_off").run(points);
    let s = &batch.summary;

    assert!(!s.build.git_rev.is_empty(), "git rev stamped");
    assert!(s.build.rustc.contains("rustc"), "rustc version stamped: {:?}", s.build.rustc);
    assert!(s.build.profile == "debug" || s.build.profile == "release");

    assert_eq!(s.workers.len(), 2, "one summary per worker");
    let worker_points: usize = s.workers.iter().map(|w| w.points).sum();
    assert_eq!(worker_points, 4, "every point attributed to a worker");
    let worker_busy: f64 = s.workers.iter().map(|w| w.busy_ms).sum();
    assert!((worker_busy - s.busy_ms).abs() < 1e-6, "worker busy sums to batch busy");
    assert!(s.imbalance >= 1.0, "imbalance is max/mean, so >= 1");
    assert!(s.queue_wait_max_ms >= s.queue_wait_mean_ms);
    assert!(s.peak_arena_flits > 0, "a loaded run has live flits");
    for (o, d) in batch.outcomes.iter().zip(&s.point_details) {
        assert_eq!(o.result.arena_peak_flits, d.arena_peak_flits);
        assert!(d.queue_wait_ms >= 0.0);
    }

    // The new fields survive serialization (nothing pins RunSummary
    // JSON byte-for-byte, but monitors key on these names).
    let json = serde_json::to_string(&s.to_value()).expect("summary serializes");
    for key in [
        "queue_wait_mean_ms",
        "imbalance",
        "peak_arena_flits",
        "\"workers\"",
        "\"build\"",
        "git_rev",
    ] {
        assert!(json.contains(key), "summary JSON carries {key}");
    }
    let _ = std::fs::remove_file(&scratch);
}

/// A progress event renders as one parseable JSON line with the fields
/// a monitor needs to be stateless.
#[test]
fn progress_event_line_parses() {
    let e = ProgressEvent {
        done: 3,
        total: 8,
        label: "ur 3DM @ 0.15".to_string(),
        seed: 42,
        wall_ms: 12.5,
        cycles: 7_800,
        kcycles_per_sec: 624.0,
        saturated: false,
        failed: false,
    };
    let line = e.to_jsonl();
    assert!(!line.contains('\n'), "one line per event");
    let v: serde::Value = serde_json::from_str(&line).expect("line parses");
    assert_eq!(v.field("done").as_u64().expect("done"), 3);
    assert_eq!(v.field("total").as_u64().expect("total"), 8);
    assert_eq!(v.field("label").as_str().expect("label"), "ur 3DM @ 0.15");
    assert!(!v.field("saturated").as_bool().expect("saturated"));
    assert!(v.field("kcycles_per_sec").as_f64().expect("rate") > 0.0);
}

/// The obs-enabled acceptance claims, serialized in one test:
///
/// 1. the phase profiler's tiled sections account for ≥ 95% of measured
///    `Network::step` wall time on a real simulation;
/// 2. a runner batch appends a ledger entry carrying config hash, seed,
///    git rev and throughput;
/// 3. the snapshot renders those phases and metrics in both formats.
#[test]
fn obs_enabled_end_to_end() {
    mira_obs::set_enabled(true);
    mira_obs::phase::reset();

    // Claim 1: profile a real run and check coverage.
    let r = run_arch(
        Arch::ThreeDM,
        false,
        Box::new(UniformRandom::new(0.10, 5, EXPERIMENT_SEED)),
        quick_sim_config(),
    );
    assert!(r.report.packets_ejected > 0, "profiled run moved traffic");
    let coverage = mira_obs::phase::coverage().expect("steps were profiled");
    assert!(
        coverage >= 0.95,
        "phase sections account for {:.1}% of step wall time (claim: >= 95%)",
        coverage * 100.0
    );
    let phases = mira_obs::phase::snapshot();
    let by_name = |n: &str| phases.iter().find(|p| p.phase == n).expect("phase row");
    assert!(by_name("step_total").calls > 0);
    assert!(by_name("router_pipeline").nanos > 0);
    assert!(by_name("stage_st").calls > 0, "router stages profiled");
    assert!(by_name("workload").calls > 0, "driver phases profiled");

    // Claim 1, sharded: with the mesh split across shard workers
    // (DESIGN.md §18) the same phases still tile `Network::step`.
    // Worker threads suppress their scopes (only the coordinating
    // thread records), so the section sum cannot exceed the step total
    // — coverage lands in [0.95, 1.0] instead of blowing past 1 from
    // concurrent double-counting.
    mira_obs::phase::reset();
    let r = run_arch(
        Arch::ThreeDM,
        false,
        Box::new(UniformRandom::new(0.10, 5, EXPERIMENT_SEED)),
        quick_sim_config().with_shards(2),
    );
    assert!(r.report.packets_ejected > 0, "sharded profiled run moved traffic");
    let coverage = mira_obs::phase::coverage().expect("sharded steps were profiled");
    assert!(
        (0.95..=1.0).contains(&coverage),
        "sharded phase sections account for {:.1}% of step wall time \
         (claim: >= 95%, and <= 100% — workers must not double-count)",
        coverage * 100.0
    );

    // Claim 2: a runner batch appends one complete ledger entry.
    let ledger_path =
        std::env::temp_dir().join(format!("mira_obs_claims_ledger_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&ledger_path);
    let seed = derive_seed(EXPERIMENT_SEED, 1);
    let points = vec![ur_point("p0", 0.05, seed), ur_point("p1", 0.10, seed)];
    let expected_hash = mira_obs::ledger::hash_hex(mira_obs::ledger::config_hash(
        "obs_claims",
        points.iter().map(|p| (p.label(), p.seed())),
    ));
    let batch = Runner::with_jobs(2).ledger_path(&ledger_path).exhibit("obs_claims").run(points);
    let entries = mira_obs::ledger::read(&ledger_path).expect("ledger written");
    assert_eq!(entries.len(), 1, "one entry per batch");
    let e = &entries[0];
    assert_eq!(e.exhibit, "obs_claims");
    assert_eq!(e.config_hash, expected_hash, "hash covers exhibit, labels and seeds");
    assert_eq!(e.seed, seed);
    assert_eq!(e.git_rev, batch.summary.build.git_rev);
    assert_eq!(e.points, 2);
    assert_eq!(e.cycles_simulated, batch.summary.cycles_simulated);
    assert!(e.kcycles_per_sec > 0.0, "throughput recorded");
    assert_eq!(e.peak_arena_flits, batch.summary.peak_arena_flits);
    assert!(e.ts_ms > 0);
    assert!(
        mira_obs::ledger::session_entries().iter().any(|s| s.config_hash == e.config_hash),
        "entry also recorded in the session list"
    );

    // Claim 3: the snapshot renders everything in both formats.
    let snap = mira_obs::snapshot();
    assert!(snap.coverage.is_some());
    assert!(snap.metrics.iter().any(|m| m.name == "mira_runner_points_total"));
    assert!(snap.metrics.iter().any(|m| m.name == "mira_arena_live_peak_flits"));
    let prom = snap.to_prometheus();
    assert!(prom.contains("mira_phase_nanos_total{phase=\"router_pipeline\"}"));
    assert!(prom.contains("mira_runner_point_wall_ms_count"));
    let back: mira_obs::ObsSnapshot =
        serde_json::from_str(&snap.to_json()).expect("snapshot round-trips");
    assert_eq!(back.phases.len(), snap.phases.len());

    std::fs::remove_file(&ledger_path).expect("cleanup");
    mira_obs::set_enabled(false);
}
