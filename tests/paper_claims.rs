//! End-to-end checks of the paper's headline claims at a reduced scale.
//!
//! These are the "shape" assertions of DESIGN.md §5: who wins, in which
//! direction, by roughly what factor. Absolute cycle counts differ from
//! the paper (different testbed), but every ordering it reports must
//! hold here.
//!
//! Multi-point tests fan their simulations out on the experiment runner
//! (worker count from `MIRA_JOBS` / the machine); each point still runs
//! the identical `EXPERIMENT_SEED` workload, so the asserted values are
//! bit-identical to the old serial loops.

use mira::arch::Arch;
use mira::experiments::common::{quick_sim_config, run_arch, sweep_ur, RunResult, EXPERIMENT_SEED};
use mira::experiments::latency::{run_nuca_ur, run_trace};
use mira::experiments::runner::{Runner, SimPoint};
use mira::noc::traffic::UniformRandom;
use mira::traffic::workloads::Application;

/// One batch of UR points at `EXPERIMENT_SEED`; results in input order.
fn latencies_of(points: &[(Arch, f64)]) -> Vec<f64> {
    let sim_points = points
        .iter()
        .map(|&(arch, rate)| {
            SimPoint::new(format!("{} @ {rate}", arch.name()), EXPERIMENT_SEED, move |seed| {
                run_arch(
                    arch,
                    false,
                    Box::new(UniformRandom::new(rate, 5, seed)),
                    quick_sim_config(),
                )
            })
        })
        .collect();
    Runner::from_env().run(sim_points).into_results().iter().map(|r| r.report.avg_latency).collect()
}

/// One batch of trace replays; results in input order.
fn traces_of(app: Application, runs: &[(Arch, bool)], cycles: u64) -> Vec<RunResult> {
    let cfg = quick_sim_config();
    let sim_points = runs
        .iter()
        .map(|&(arch, shutdown)| {
            SimPoint::new(format!("{} {}", app.name(), arch.name()), EXPERIMENT_SEED, move |_| {
                run_trace(app, arch, shutdown, cycles, cfg)
            })
        })
        .collect();
    Runner::from_env().run(sim_points).into_results()
}

/// §4.2.1 / Fig. 11(a): 3DM-E has the lowest UR latency at every load;
/// at a pre-saturation load its saving over 2DB is large (paper: up to
/// 51 % at 30 % injection) and over 3DB substantial (paper: ~26 %).
#[test]
fn ur_latency_orderings() {
    let archs = [Arch::TwoDB, Arch::ThreeDB, Arch::ThreeDM, Arch::ThreeDME];
    let points: Vec<(Arch, f64)> =
        [0.05, 0.15].iter().flat_map(|&rate| archs.iter().map(move |&a| (a, rate))).collect();
    let lat = latencies_of(&points);
    for (ri, rate) in [0.05, 0.15].iter().enumerate() {
        let [l2, l3b, l3m, l3me] = [lat[ri * 4], lat[ri * 4 + 1], lat[ri * 4 + 2], lat[ri * 4 + 3]];
        assert!(l3me < l3m && l3me < l3b && l3me < l2, "rate {rate}");
        assert!(l3m < l2, "rate {rate}");
    }
    // Saving factors at the moderate load (second rate block).
    let saving_2db = 1.0 - lat[7] / lat[4];
    assert!(saving_2db > 0.35, "3DM-E saves {:.0}% over 2DB", saving_2db * 100.0);
    let saving_3db = 1.0 - lat[7] / lat[5];
    assert!(saving_3db > 0.15, "3DM-E saves {:.0}% over 3DB", saving_3db * 100.0);
}

/// §4.2.1: pipeline combining buys 3DM up to ~14 % and 3DM-E ~23 % —
/// here: the (NC) ablations must be measurably slower.
#[test]
fn pipeline_combining_gains() {
    let lat = latencies_of(&[
        (Arch::ThreeDM, 0.05),
        (Arch::ThreeDMNc, 0.05),
        (Arch::ThreeDME, 0.05),
        (Arch::ThreeDMENc, 0.05),
    ]);
    let gain_m = 1.0 - lat[0] / lat[1];
    let gain_e = 1.0 - lat[2] / lat[3];
    assert!((0.05..0.35).contains(&gain_m), "3DM gain {gain_m:.3}");
    assert!((0.05..0.35).contains(&gain_e), "3DM-E gain {gain_e:.3}");
}

/// §4.2.1: 2DB and 3DM(NC) have the same logical network — identical
/// latency under the identical seeded workload.
#[test]
fn threedm_nc_equals_2db_logically() {
    let lat = latencies_of(&[(Arch::TwoDB, 0.10), (Arch::ThreeDMNc, 0.10)]);
    assert!((lat[0] - lat[1]).abs() < 1e-9, "{} vs {}", lat[0], lat[1]);
}

/// Fig. 11(d): hop counts — 3DM-E minimal, 2DB = 3DM, 3DB in between
/// for UR; 3DB degrades under NUCA-constrained traffic.
#[test]
fn hop_count_shapes() {
    let sweep = sweep_ur(&[0.05], 0.0, quick_sim_config());
    let hops = |arch: Arch| sweep.iter().find(|p| p.arch == arch).unwrap().result.report.avg_hops;
    assert!((hops(Arch::TwoDB) - 4.0).abs() < 0.25, "2DB UR ≈ 4 hops, got {}", hops(Arch::TwoDB));
    assert!((hops(Arch::ThreeDM) - hops(Arch::TwoDB)).abs() < 0.1, "2DB and 3DM share the layout");
    assert!(
        (hops(Arch::ThreeDME) - 2.51).abs() < 0.25,
        "express ≈ 2.5 hops, got {}",
        hops(Arch::ThreeDME)
    );
    assert!(hops(Arch::ThreeDB) < hops(Arch::TwoDB));

    // NUCA-UR penalises the 3DB layout.
    let n3db = run_nuca_ur(Arch::ThreeDB, 0.05, quick_sim_config()).report.avg_hops;
    assert!(n3db > hops(Arch::ThreeDB), "NUCA raises 3DB hops: {n3db}");
}

/// §4.2.2 / Fig. 12(a): power ordering at UR — the multi-layered designs
/// beat both baselines; 2DB is the hungriest.
#[test]
fn ur_power_orderings() {
    let sweep = sweep_ur(&[0.10], 0.0, quick_sim_config());
    let p = |arch: Arch| sweep.iter().find(|x| x.arch == arch).unwrap().result.avg_power_w;
    assert!(p(Arch::ThreeDME) < p(Arch::TwoDB));
    assert!(p(Arch::ThreeDM) < p(Arch::ThreeDB));
    assert!(p(Arch::ThreeDB) < p(Arch::TwoDB));
    // 3DM-E saves on the order of the paper's 42 % over 2DB.
    let saving = 1.0 - p(Arch::ThreeDME) / p(Arch::TwoDB);
    assert!((0.30..0.55).contains(&saving), "3DM-E power saving {saving:.3}");
}

/// §4.2.2 / Fig. 12(c): on the traces with shutdown, 3DM-E lands far
/// below 2DB (paper: ~67 % less power), and 3DB is the worst performer.
#[test]
fn trace_power_shapes() {
    let runs = traces_of(
        Application::Tpcw,
        &[
            (Arch::TwoDB, false),
            (Arch::ThreeDB, false),
            (Arch::ThreeDM, true),
            (Arch::ThreeDME, true),
        ],
        4_000,
    );
    let [base, p3db, p3m, p3me] =
        [runs[0].avg_power_w, runs[1].avg_power_w, runs[2].avg_power_w, runs[3].avg_power_w];
    assert!(p3me < 0.55 * base, "3DM-E with shutdown: {:.2} vs 2DB {:.2}", p3me, base);
    assert!(p3m < 0.75 * base, "3DM with shutdown: {:.2} vs 2DB {:.2}", p3m, base);
    assert!(p3db > p3m && p3db > p3me, "3DB is the worst of the 3D designs");
}

/// §4.2.1 / Fig. 11(c): trace latency normalised to 2DB — 3DM-E ≈ 0.6,
/// 3DM ≈ 0.8, 3DB ≈ 1.0.
#[test]
fn trace_latency_bands() {
    let runs = traces_of(
        Application::Apache,
        &[
            (Arch::TwoDB, false),
            (Arch::ThreeDME, false),
            (Arch::ThreeDM, false),
            (Arch::ThreeDB, false),
        ],
        4_000,
    );
    let base = runs[0].report.avg_latency;
    let r = |i: usize| runs[i].report.avg_latency / base;
    assert!((0.5..0.75).contains(&r(1)), "3DM-E {:.3}", r(1));
    assert!((0.7..0.95).contains(&r(2)), "3DM {:.3}", r(2));
    assert!((0.85..1.25).contains(&r(3)), "3DB {:.3}", r(3));
}
