//! End-to-end checks of the paper's headline claims at a reduced scale.
//!
//! These are the "shape" assertions of DESIGN.md §5: who wins, in which
//! direction, by roughly what factor. Absolute cycle counts differ from
//! the paper (different testbed), but every ordering it reports must
//! hold here.

use mira::arch::Arch;
use mira::experiments::common::{quick_sim_config, run_arch, sweep_ur, EXPERIMENT_SEED};
use mira::experiments::latency::{run_nuca_ur, run_trace};
use mira::noc::traffic::UniformRandom;
use mira::traffic::workloads::Application;

fn latency_of(arch: Arch, rate: f64) -> f64 {
    let w = UniformRandom::new(rate, 5, EXPERIMENT_SEED);
    run_arch(arch, false, Box::new(w), quick_sim_config()).report.avg_latency
}

/// §4.2.1 / Fig. 11(a): 3DM-E has the lowest UR latency at every load;
/// at a pre-saturation load its saving over 2DB is large (paper: up to
/// 51 % at 30 % injection) and over 3DB substantial (paper: ~26 %).
#[test]
fn ur_latency_orderings() {
    for rate in [0.05, 0.15] {
        let l2 = latency_of(Arch::TwoDB, rate);
        let l3b = latency_of(Arch::ThreeDB, rate);
        let l3m = latency_of(Arch::ThreeDM, rate);
        let l3me = latency_of(Arch::ThreeDME, rate);
        assert!(l3me < l3m && l3me < l3b && l3me < l2, "rate {rate}");
        assert!(l3m < l2, "rate {rate}");
    }
    // Saving factors at a moderate load.
    let saving_2db = 1.0 - latency_of(Arch::ThreeDME, 0.15) / latency_of(Arch::TwoDB, 0.15);
    assert!(saving_2db > 0.35, "3DM-E saves {:.0}% over 2DB", saving_2db * 100.0);
    let saving_3db = 1.0 - latency_of(Arch::ThreeDME, 0.15) / latency_of(Arch::ThreeDB, 0.15);
    assert!(saving_3db > 0.15, "3DM-E saves {:.0}% over 3DB", saving_3db * 100.0);
}

/// §4.2.1: pipeline combining buys 3DM up to ~14 % and 3DM-E ~23 % —
/// here: the (NC) ablations must be measurably slower.
#[test]
fn pipeline_combining_gains() {
    let gain_m = 1.0 - latency_of(Arch::ThreeDM, 0.05) / latency_of(Arch::ThreeDMNc, 0.05);
    let gain_e = 1.0 - latency_of(Arch::ThreeDME, 0.05) / latency_of(Arch::ThreeDMENc, 0.05);
    assert!((0.05..0.35).contains(&gain_m), "3DM gain {gain_m:.3}");
    assert!((0.05..0.35).contains(&gain_e), "3DM-E gain {gain_e:.3}");
}

/// §4.2.1: 2DB and 3DM(NC) have the same logical network — identical
/// latency under the identical seeded workload.
#[test]
fn threedm_nc_equals_2db_logically() {
    let a = latency_of(Arch::TwoDB, 0.10);
    let b = latency_of(Arch::ThreeDMNc, 0.10);
    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
}

/// Fig. 11(d): hop counts — 3DM-E minimal, 2DB = 3DM, 3DB in between
/// for UR; 3DB degrades under NUCA-constrained traffic.
#[test]
fn hop_count_shapes() {
    let sweep = sweep_ur(&[0.05], 0.0, quick_sim_config());
    let hops = |arch: Arch| {
        sweep.iter().find(|p| p.arch == arch).unwrap().result.report.avg_hops
    };
    assert!((hops(Arch::TwoDB) - 4.0).abs() < 0.25, "2DB UR ≈ 4 hops, got {}", hops(Arch::TwoDB));
    assert!((hops(Arch::ThreeDM) - hops(Arch::TwoDB)).abs() < 0.1, "2DB and 3DM share the layout");
    assert!((hops(Arch::ThreeDME) - 2.51).abs() < 0.25, "express ≈ 2.5 hops, got {}", hops(Arch::ThreeDME));
    assert!(hops(Arch::ThreeDB) < hops(Arch::TwoDB));

    // NUCA-UR penalises the 3DB layout.
    let n3db = run_nuca_ur(Arch::ThreeDB, 0.05, quick_sim_config()).report.avg_hops;
    assert!(n3db > hops(Arch::ThreeDB), "NUCA raises 3DB hops: {n3db}");
}

/// §4.2.2 / Fig. 12(a): power ordering at UR — the multi-layered designs
/// beat both baselines; 2DB is the hungriest.
#[test]
fn ur_power_orderings() {
    let sweep = sweep_ur(&[0.10], 0.0, quick_sim_config());
    let p = |arch: Arch| sweep.iter().find(|x| x.arch == arch).unwrap().result.avg_power_w;
    assert!(p(Arch::ThreeDME) < p(Arch::TwoDB));
    assert!(p(Arch::ThreeDM) < p(Arch::ThreeDB));
    assert!(p(Arch::ThreeDB) < p(Arch::TwoDB));
    // 3DM-E saves on the order of the paper's 42 % over 2DB.
    let saving = 1.0 - p(Arch::ThreeDME) / p(Arch::TwoDB);
    assert!((0.30..0.55).contains(&saving), "3DM-E power saving {saving:.3}");
}

/// §4.2.2 / Fig. 12(c): on the traces with shutdown, 3DM-E lands far
/// below 2DB (paper: ~67 % less power), and 3DB is the worst performer.
#[test]
fn trace_power_shapes() {
    let app = Application::Tpcw;
    let cfg = quick_sim_config();
    let cycles = 4_000;
    let base = run_trace(app, Arch::TwoDB, false, cycles, cfg).avg_power_w;
    let p3db = run_trace(app, Arch::ThreeDB, false, cycles, cfg).avg_power_w;
    let p3m = run_trace(app, Arch::ThreeDM, true, cycles, cfg).avg_power_w;
    let p3me = run_trace(app, Arch::ThreeDME, true, cycles, cfg).avg_power_w;
    assert!(p3me < 0.55 * base, "3DM-E with shutdown: {:.2} vs 2DB {:.2}", p3me, base);
    assert!(p3m < 0.75 * base, "3DM with shutdown: {:.2} vs 2DB {:.2}", p3m, base);
    assert!(p3db > p3m && p3db > p3me, "3DB is the worst of the 3D designs");
}

/// §4.2.1 / Fig. 11(c): trace latency normalised to 2DB — 3DM-E ≈ 0.6,
/// 3DM ≈ 0.8, 3DB ≈ 1.0.
#[test]
fn trace_latency_bands() {
    let app = Application::Apache;
    let cfg = quick_sim_config();
    let cycles = 4_000;
    let base = run_trace(app, Arch::TwoDB, false, cycles, cfg).report.avg_latency;
    let r = |a: Arch| run_trace(app, a, false, cycles, cfg).report.avg_latency / base;
    assert!((0.5..0.75).contains(&r(Arch::ThreeDME)), "3DM-E {:.3}", r(Arch::ThreeDME));
    assert!((0.7..0.95).contains(&r(Arch::ThreeDM)), "3DM {:.3}", r(Arch::ThreeDM));
    assert!((0.85..1.25).contains(&r(Arch::ThreeDB)), "3DB {:.3}", r(Arch::ThreeDB));
}
