//! Chaos tests for the crash-safe runner (DESIGN.md §16): point
//! failures stay isolated, retries are deterministic, runaway points
//! are timed out, and a sweep resumed from any checkpoint prefix is
//! bit-identical to an uninterrupted run.
//!
//! Sims here use an ultra-short config — the claims under test are
//! about the *harness* (isolation, resume identity), not statistics.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use mira::arch::Arch;
use mira::experiments::common::{run_arch, EXPERIMENT_SEED};
use mira::experiments::runner::{
    derive_seed, FailureKind, PointOutcome, RunBatch, Runner, SimPoint,
};
use mira_noc::sim::SimConfig;
use mira_noc::traffic::UniformRandom;
use proptest::prelude::*;
use serde::Serialize;

const EXHIBIT: &str = "chaos_resume";
const ARCHS: [Arch; 3] = [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME];

fn chaos_cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 100,
        measure_cycles: 500,
        drain_cycles: 2_500,
        ..SimConfig::default()
    }
}

fn sim_point(label: String, arch: Arch, rate: f64, seed: u64) -> SimPoint {
    SimPoint::new(label, seed, move |s| {
        run_arch(arch, false, Box::new(UniformRandom::new(rate, 5, s)), chaos_cfg())
    })
}

/// The suite's canonical batch: 3 architectures × 2 rates, seeds
/// shared per rate like the real sweeps.
fn sim_points() -> Vec<SimPoint> {
    let mut pts = Vec::new();
    for (ri, rate) in [0.05, 0.10].into_iter().enumerate() {
        let seed = derive_seed(EXPERIMENT_SEED, ri as u64);
        for arch in ARCHS {
            pts.push(sim_point(format!("chaos {arch} @ {rate}"), arch, rate, seed));
        }
    }
    pts
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mira_chaos_{}_{tag}", std::process::id()))
}

/// The checkpoint file the canonical batch writes under `dir`.
fn ckpt_path(dir: &Path) -> PathBuf {
    let pts = sim_points();
    let hash = mira_obs::ledger::config_hash(EXHIBIT, pts.iter().map(|p| (p.label(), p.seed())));
    mira_obs::checkpoint::path_for(dir, EXHIBIT, hash)
}

/// Bitwise comparison of everything an exhibit reads off a point.
fn assert_bit_identical(a: &PointOutcome, b: &PointOutcome) {
    assert_eq!(a.label, b.label, "order must match input order");
    assert_eq!(a.seed, b.seed);
    let (x, y) = (&a.result.report, &b.result.report);
    assert_eq!(x.avg_latency.to_bits(), y.avg_latency.to_bits(), "latency at {}", a.label);
    assert_eq!(x.avg_hops.to_bits(), y.avg_hops.to_bits(), "hops at {}", a.label);
    assert_eq!(x.packets_created, y.packets_created, "created at {}", a.label);
    assert_eq!(x.packets_ejected, y.packets_ejected, "ejected at {}", a.label);
    assert_eq!(x.counters, y.counters, "event counters at {}", a.label);
    assert_eq!(
        a.result.avg_power_w.to_bits(),
        b.result.avg_power_w.to_bits(),
        "power at {}",
        a.label
    );
    assert_eq!(a.result.pdp.to_bits(), b.result.pdp.to_bits(), "pdp at {}", a.label);
    assert_eq!(a.result.arena_peak_flits, b.result.arena_peak_flits, "arena at {}", a.label);
}

/// One uninterrupted checkpointed run of the canonical batch: the
/// reference outcomes plus the checkpoint lines it wrote, shared by
/// every resume test (the runner contract makes it reusable — results
/// depend only on `(closure, seed)`).
fn baseline() -> &'static (Vec<PointOutcome>, Vec<String>) {
    static BASELINE: OnceLock<(Vec<PointOutcome>, Vec<String>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = temp_dir("baseline");
        let batch = Runner::with_jobs(3).exhibit(EXHIBIT).checkpoint_dir(&dir).run(sim_points());
        let text = std::fs::read_to_string(ckpt_path(&dir)).expect("checkpoint written");
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(lines.len(), batch.outcomes.len(), "one checkpoint line per point");
        (batch.outcomes, lines)
    })
}

/// Simulates an interrupt: seeds a fresh checkpoint dir with the first
/// `prefix` lines the baseline wrote, then re-runs with `--resume`.
fn resume_with_prefix(prefix: &[String], jobs: usize, tag: &str) -> RunBatch {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    let content: String = prefix.iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(ckpt_path(&dir), content).expect("seed checkpoint");
    let batch = Runner::with_jobs(jobs)
        .exhibit(EXHIBIT)
        .checkpoint_dir(&dir)
        .resume(true)
        .run(sim_points());
    let _ = std::fs::remove_dir_all(&dir);
    batch
}

/// A sweep interrupted at *every* prefix length and resumed — with the
/// worker count changed across the interrupt — reproduces the
/// uninterrupted run bit for bit (ISSUE acceptance criterion).
#[test]
fn resume_at_every_prefix_is_bit_identical() {
    let (base, lines) = baseline();
    for k in 0..=lines.len() {
        let jobs = if k % 2 == 0 { 1 } else { 3 };
        let batch = resume_with_prefix(&lines[..k], jobs, "prefix");
        assert_eq!(batch.summary.resumed_points, k, "prefix {k}");
        assert_eq!(
            batch.outcomes.iter().filter(|o| o.resumed).count(),
            k,
            "prefix {k}: resumed flags"
        );
        assert_eq!(base.len(), batch.outcomes.len());
        for (a, b) in base.iter().zip(&batch.outcomes) {
            assert_bit_identical(a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (interrupt point, pool size) pairs: the resumed run is
    /// always bit-identical and accounts for exactly the replayed
    /// prefix.
    #[test]
    fn resume_any_prefix_any_pool(k in 0usize..7, jobs in 1usize..5) {
        let (base, lines) = baseline();
        let k = k.min(lines.len());
        let batch = resume_with_prefix(&lines[..k], jobs, "prop");
        prop_assert_eq!(batch.summary.resumed_points, k);
        for (a, b) in base.iter().zip(&batch.outcomes) {
            prop_assert_eq!(a.result.report.avg_latency.to_bits(),
                            b.result.report.avg_latency.to_bits());
            prop_assert_eq!(&a.result.report.counters, &b.result.report.counters);
            prop_assert_eq!(a.result.avg_power_w.to_bits(), b.result.avg_power_w.to_bits());
        }
    }
}

/// A panicking point poisons nothing: every other point's result is
/// bit-identical to a batch that never saw the bad point, and the
/// failure is itemized in the summary.
#[test]
fn panicking_point_leaves_other_results_bit_identical() {
    let (clean, _) = baseline();
    let mut pts = sim_points();
    pts.insert(3, SimPoint::new("boom", 999, |_| panic!("injected chaos panic")));
    let batch = Runner::with_jobs(2).try_run(pts);

    let fails: Vec<_> = batch.failures().collect();
    assert_eq!(fails.len(), 1);
    assert_eq!(fails[0].index, 3);
    assert_eq!(fails[0].label, "boom");
    assert!(
        matches!(&fails[0].kind, FailureKind::Panic { payload } if payload.contains("injected"))
    );

    let oks: Vec<&PointOutcome> = batch.outcomes.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(oks.len(), clean.len());
    for (a, b) in clean.iter().zip(oks) {
        assert_bit_identical(a, b);
    }

    assert_eq!(batch.summary.failed_points.len(), 1);
    assert_eq!(batch.summary.failed_points[0].kind, "panic");
    let json = serde_json::to_string(&batch.summary.to_value()).expect("summary serializes");
    assert!(json.contains("failed_points"), "failures reach the JSON consumers");
}

/// A flaky-once point (panics on its first attempt only) succeeds on
/// the retry with the same seed, producing the result a never-flaky
/// run would have.
#[test]
fn flaky_once_point_succeeds_on_retry_bit_identically() {
    static CALLS: AtomicU32 = AtomicU32::new(0);
    let seed = derive_seed(EXPERIMENT_SEED, 0);
    let clean =
        Runner::with_jobs(1).run(vec![sim_point("flaky".into(), Arch::TwoDB, 0.05, seed)]).outcomes;

    let flaky = SimPoint::new("flaky", seed, move |s| {
        if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("transient chaos failure");
        }
        run_arch(Arch::TwoDB, false, Box::new(UniformRandom::new(0.05, 5, s)), chaos_cfg())
    });
    let batch = Runner::with_jobs(1)
        .point_retries(1)
        .retry_backoff(Duration::from_millis(1))
        .run(vec![flaky]);

    assert_eq!(CALLS.load(Ordering::SeqCst), 2, "exactly one retry");
    assert_eq!(batch.outcomes[0].attempts, 2);
    assert_eq!(batch.summary.retried_points, 1);
    assert_bit_identical(&clean[0], &batch.outcomes[0]);
}

/// A runaway point is marked timed out by the watchdog while the rest
/// of the pool keeps completing points.
#[test]
fn runaway_point_is_timed_out_and_pool_continues() {
    let seed = derive_seed(EXPERIMENT_SEED, 0);
    let pts = vec![
        sim_point("t-ok0".into(), Arch::TwoDB, 0.05, seed),
        SimPoint::new("stuck", 1, |_| {
            std::thread::sleep(Duration::from_secs(3));
            unreachable!("watchdog should have replaced this worker")
        }),
        sim_point("t-ok2".into(), Arch::ThreeDM, 0.05, seed),
    ];
    let batch = Runner::with_jobs(2).point_timeout(Duration::from_millis(200)).try_run(pts);

    assert!(batch.outcomes[0].is_ok(), "pool kept working");
    assert!(batch.outcomes[2].is_ok(), "pool survived the runaway point");
    let f = batch.outcomes[1].as_ref().expect_err("stuck point timed out");
    assert!(matches!(f.kind, FailureKind::Timeout { .. }), "{:?}", f.kind);
    assert_eq!(batch.summary.failed_points.len(), 1);
    assert_eq!(batch.summary.failed_points[0].kind, "timeout");
}

/// Torn (interrupted mid-write) and stale (different config hash)
/// checkpoint lines are skipped with the valid prefix still replayed.
#[test]
fn torn_and_stale_checkpoint_lines_are_skipped() {
    let (base, lines) = baseline();
    let pts = sim_points();
    let hash = mira_obs::ledger::hash_hex(mira_obs::ledger::config_hash(
        EXHIBIT,
        pts.iter().map(|p| (p.label(), p.seed())),
    ));

    let mut content: String = lines[..3].iter().map(|l| format!("{l}\n")).collect();
    // A stale line: valid JSON from some other batch identity.
    content.push_str(&lines[3].replacen(&hash, "0000000000000000", 1));
    content.push('\n');
    // A torn line: the process died mid-append.
    content.push_str("{\"config_hash\":\"tor");

    let dir = temp_dir("torn");
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    std::fs::write(ckpt_path(&dir), content).expect("seed checkpoint");
    let batch =
        Runner::with_jobs(2).exhibit(EXHIBIT).checkpoint_dir(&dir).resume(true).run(sim_points());
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(batch.summary.resumed_points, 3, "only the intact prefix replays");
    for (a, b) in base.iter().zip(&batch.outcomes) {
        assert_bit_identical(a, b);
    }
}

/// The chaos hook panics deterministic points; with one retry budgeted
/// the batch completes bit-identically, documenting the attempts.
#[test]
fn chaos_hook_with_retries_completes_bit_identically() {
    let (clean, _) = baseline();
    let batch = Runner::with_jobs(2)
        .chaos_every(2)
        .point_retries(1)
        .retry_backoff(Duration::from_millis(1))
        .run(sim_points());

    assert_eq!(clean.len(), batch.outcomes.len());
    for (a, b) in clean.iter().zip(&batch.outcomes) {
        assert_bit_identical(a, b);
    }
    for (i, o) in batch.outcomes.iter().enumerate() {
        let expected = if (i + 1) % 2 == 0 { 2 } else { 1 };
        assert_eq!(o.attempts, expected, "point {i}: chaos is index-deterministic");
    }
    assert_eq!(batch.summary.retried_points, 3);
}
