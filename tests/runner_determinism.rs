//! Serial-vs-parallel golden test for the experiment runner.
//!
//! The runner's contract is that a point's result depends only on its
//! `(closure, seed)` pair — never on the worker count or on how the OS
//! schedules the pool. These tests run the same batch with 1 worker and
//! with several, and demand bit-identical `SimReport` fields per point.

use mira::experiments::common::sweep_ur_points;
use mira::experiments::runner::{derive_seed, PointOutcome, Runner};
use mira::experiments::{quick_sim_config, EXPERIMENT_SEED};

fn run_with(jobs: usize) -> Vec<PointOutcome> {
    let points = sweep_ur_points(&[0.05, 0.20], 0.5, quick_sim_config());
    Runner::with_jobs(jobs).run(points).outcomes
}

/// Bitwise comparison of everything an experiment reads off a point.
fn assert_outcomes_identical(a: &[PointOutcome], b: &[PointOutcome]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label, "order must match input order");
        assert_eq!(x.seed, y.seed);
        let (rx, ry) = (&x.result.report, &y.result.report);
        assert_eq!(
            rx.avg_latency.to_bits(),
            ry.avg_latency.to_bits(),
            "latency differs at {}",
            x.label
        );
        assert_eq!(rx.avg_hops.to_bits(), ry.avg_hops.to_bits(), "hops differ at {}", x.label);
        assert_eq!(
            rx.throughput.to_bits(),
            ry.throughput.to_bits(),
            "throughput differs at {}",
            x.label
        );
        assert_eq!(rx.packets_created, ry.packets_created, "created differ at {}", x.label);
        assert_eq!(rx.packets_ejected, ry.packets_ejected, "ejected differ at {}", x.label);
        assert_eq!(rx.saturated, ry.saturated, "saturation differs at {}", x.label);
        assert_eq!(rx.cycles_simulated, ry.cycles_simulated);
        assert_eq!(rx.counters, ry.counters, "event counters differ at {}", x.label);
        assert_eq!(
            x.result.avg_power_w.to_bits(),
            y.result.avg_power_w.to_bits(),
            "power differs at {}",
            x.label
        );
    }
}

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let serial = run_with(1);
    let four = run_with(4);
    assert_outcomes_identical(&serial, &four);
}

#[test]
fn oversubscribed_pool_changes_nothing() {
    // More workers than points: some threads exit without ever
    // claiming work, which must not perturb the results either.
    let serial = run_with(1);
    let many = run_with(32);
    assert_outcomes_identical(&serial, &many);
}

#[test]
fn repeated_runs_with_same_experiment_seed_are_identical() {
    let first = run_with(3);
    let second = run_with(3);
    assert_outcomes_identical(&first, &second);
}

/// The journey sampler's packet set is a pure function of packet ids
/// and the sampling seed: the same sweep run on 1 worker and on 4
/// returns identical sampled sets (order-independent `packets_hash`)
/// and identical attribution reports, per point.
#[test]
fn sampled_journey_set_is_identical_across_worker_counts() {
    use mira_noc::telemetry::TelemetryConfig;
    let journey_cfg =
        quick_sim_config().with_telemetry(TelemetryConfig::disabled().with_journeys(250_000));
    let run = |jobs: usize| {
        let points = sweep_ur_points(&[0.05, 0.20], 0.0, journey_cfg);
        Runner::with_jobs(jobs).run(points).outcomes
    };
    let serial = run(1);
    let four = run(4);
    assert_eq!(serial.len(), four.len());
    for (x, y) in serial.iter().zip(&four) {
        let jx = x.result.report.journeys.as_ref().expect("journeys enabled");
        let jy = y.result.report.journeys.as_ref().expect("journeys enabled");
        assert!(jx.sampled > 0, "{}: partial sampling still catches packets", x.label);
        assert_eq!(jx.sampled, jy.sampled, "sampled count differs at {}", x.label);
        assert_eq!(jx.packets_hash, jy.packets_hash, "sampled packet set differs at {}", x.label);
        assert_eq!(jx, jy, "attribution report differs at {}", x.label);
    }
}

/// Intra-run sharding composes with the runner: splitting each
/// simulation across shard workers (DESIGN.md §18) — on top of the
/// runner's own point-level pool — still yields bit-identical reports
/// and identical sampled journey sets, per point, at any shard count.
#[test]
fn sharded_stepping_is_bit_identical_across_shard_counts() {
    use mira_noc::telemetry::TelemetryConfig;
    let run = |shards: usize| {
        let cfg = quick_sim_config()
            .with_telemetry(TelemetryConfig::disabled().with_journeys(250_000))
            .with_shards(shards);
        let points = sweep_ur_points(&[0.05, 0.20], 0.5, cfg);
        Runner::with_jobs(2).run(points).outcomes
    };
    let sequential = run(1);
    for shards in [2usize, 4] {
        let sharded = run(shards);
        assert_outcomes_identical(&sequential, &sharded);
        for (x, y) in sequential.iter().zip(&sharded) {
            let jx = x.result.report.journeys.as_ref().expect("journeys enabled");
            let jy = y.result.report.journeys.as_ref().expect("journeys enabled");
            assert_eq!(
                jx.packets_hash, jy.packets_hash,
                "sampled packet set differs at {} with {shards} shards",
                x.label
            );
            assert_eq!(jx, jy, "attribution differs at {} with {shards} shards", x.label);
        }
    }
}

#[test]
fn seed_derivation_is_a_pure_function() {
    // The per-point seeds come from (EXPERIMENT_SEED, rate index) and
    // are shared across the architectures at one rate, so paired
    // comparisons (e.g. 2DB vs 3DM-NC) see the same logical workload.
    let outcomes = run_with(2);
    let archs = mira::arch::Arch::ALL.len();
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.seed, derive_seed(EXPERIMENT_SEED, (i / archs) as u64));
    }
    let per_rate: Vec<u64> = outcomes.iter().step_by(archs).map(|o| o.seed).collect();
    assert!(per_rate.windows(2).all(|w| w[0] != w[1]), "distinct rates get distinct seeds");
}
