//! Golden determinism guard for the telemetry PR (DESIGN.md §11).
//!
//! The telemetry subsystem is purely observational: with the default
//! `NullSink` the simulator must produce bit-identical results to the
//! pre-telemetry build. The `EXPECTED` bits below were captured on the
//! commit immediately before telemetry landed, with the exact recipe in
//! [`run_point`]; any drift means an instrumentation hook leaked into
//! the simulated behaviour.

use mira::arch::Arch;
use mira::experiments::common::{run_arch, EXPERIMENT_SEED};
use mira::experiments::quick_sim_config;
use mira_noc::telemetry::TelemetryConfig;
use mira_noc::traffic::{PayloadProfile, UniformRandom};
use mira_noc::SimConfig;

/// One pinned run: architecture, load, short-flit fraction, and the
/// pre-telemetry golden observables (floats as IEEE-754 bit patterns).
struct Golden {
    name: &'static str,
    arch: Arch,
    rate: f64,
    short: f64,
    lat_bits: u64,
    hops_bits: u64,
    thr_bits: u64,
    pwr_bits: u64,
    created: u64,
    ejected: u64,
    xbar_raw: u64,
}

const EXPECTED: [Golden; 3] = [
    Golden {
        name: "2db_ur010",
        arch: Arch::TwoDB,
        rate: 0.10,
        short: 0.0,
        lat_bits: 0x4041e678108f868e,
        hops_bits: 0x40100dccf0211f0d,
        thr_bits: 0x3fba3b0342fa28cf,
        pwr_bits: 0x40100571615c4461,
        created: 1113,
        ejected: 1113,
        xbar_raw: 28226,
    },
    Golden {
        name: "3dm_ur010",
        arch: Arch::ThreeDM,
        rate: 0.10,
        short: 0.0,
        lat_bits: 0x403d0882a5257dd1,
        hops_bits: 0x40100dccf0211f0d,
        thr_bits: 0x3fba45ef76dc1f40,
        pwr_bits: 0x40055cd8e2c5b9fe,
        created: 1113,
        ejected: 1113,
        xbar_raw: 28183,
    },
    Golden {
        name: "3dme_ur020_short",
        arch: Arch::ThreeDME,
        rate: 0.20,
        short: 0.5,
        lat_bits: 0x40378e7b54166c61,
        hops_bits: 0x4003f2eb71fc4345,
        thr_bits: 0x3fc9e3064bb33ce9,
        pwr_bits: 0x4009fd493a040d1d,
        created: 2192,
        ejected: 2192,
        xbar_raw: 38666,
    },
];

/// Replays one golden point. `short > 0` enables the short-flit payload
/// profile and layer shutdown, matching how the power experiments drive
/// the 3D architectures.
fn run_point(g: &Golden, sim_cfg: SimConfig) -> mira::experiments::common::RunResult {
    let mut w = UniformRandom::new(g.rate, 5, EXPERIMENT_SEED);
    if g.short > 0.0 {
        w = w.with_payload(PayloadProfile::with_short_fraction(4, g.short));
    }
    run_arch(g.arch, g.short > 0.0, Box::new(w), sim_cfg)
}

fn check(g: &Golden, r: &mira::experiments::common::RunResult, label: &str) {
    assert_eq!(
        r.report.avg_latency.to_bits(),
        g.lat_bits,
        "{}/{label}: avg_latency drifted ({} != {})",
        g.name,
        r.report.avg_latency,
        f64::from_bits(g.lat_bits),
    );
    assert_eq!(r.report.avg_hops.to_bits(), g.hops_bits, "{}/{label}: avg_hops", g.name);
    assert_eq!(r.report.throughput.to_bits(), g.thr_bits, "{}/{label}: throughput", g.name);
    assert_eq!(r.avg_power_w.to_bits(), g.pwr_bits, "{}/{label}: avg_power_w", g.name);
    assert_eq!(r.report.packets_created, g.created, "{}/{label}: packets_created", g.name);
    assert_eq!(r.report.packets_ejected, g.ejected, "{}/{label}: packets_ejected", g.name);
    assert_eq!(
        r.report.counters.xbar_traversals_raw, g.xbar_raw,
        "{}/{label}: xbar_traversals_raw",
        g.name
    );
}

/// Default path (NullSink, no metrics windows) reproduces the
/// pre-telemetry golden bits exactly.
#[test]
fn null_sink_is_bit_identical_to_pre_telemetry_build() {
    for g in &EXPECTED {
        let r = run_point(g, quick_sim_config());
        check(g, &r, "null-sink");
    }
}

/// Turning on metrics windows and event tracing changes nothing about
/// the simulated behaviour — same golden bits, counters included.
#[test]
fn enabled_telemetry_is_bit_identical_to_disabled() {
    for g in &EXPECTED {
        let traced_cfg = quick_sim_config().with_telemetry(TelemetryConfig {
            metrics_window: 500,
            trace_capacity: 1 << 14,
            journey_sample_ppm: 0,
            journey_seed: 0,
        });
        let traced = run_point(g, traced_cfg);
        check(g, &traced, "traced");
        assert!(!traced.report.windows.is_empty(), "{}: windows were collected", g.name);
        let plain = run_point(g, quick_sim_config());
        assert_eq!(plain.report.counters, traced.report.counters, "{}: counters", g.name);
        assert_eq!(plain.pdp.to_bits(), traced.pdp.to_bits(), "{}: pdp", g.name);
    }
}

/// A span-sample rate of zero leaves the journey recorder uninstalled:
/// the run reproduces the pre-journey golden bits exactly (the
/// `--span-sample-rate 0` acceptance criterion).
#[test]
fn zero_span_rate_is_bit_identical_to_pre_journey_build() {
    for g in &EXPECTED {
        let cfg = quick_sim_config().with_telemetry(TelemetryConfig::disabled().with_journeys(0));
        let r = run_point(g, cfg);
        check(g, &r, "span-rate-0");
    }
}

/// Arming the full anomaly-detector suite (DESIGN.md §17) changes
/// nothing on a healthy run: the recorder only reads fabric state, no
/// detector fires, and the pre-telemetry golden bits reproduce exactly,
/// counters included.
#[test]
fn armed_anomaly_recorder_is_bit_identical_to_disabled() {
    use mira::noc::anomaly::AnomalyConfig;
    for g in &EXPECTED {
        let armed = run_point(g, quick_sim_config().with_anomaly(AnomalyConfig::detect()));
        check(g, &armed, "anomaly-armed");
        assert_eq!(
            armed.report.anomalies.total(),
            0,
            "{}: no detector may fire on a healthy golden run",
            g.name
        );
        let plain = run_point(g, quick_sim_config());
        assert_eq!(plain.report.counters, armed.report.counters, "{}: counters", g.name);
        assert_eq!(plain.pdp.to_bits(), armed.pdp.to_bits(), "{}: pdp", g.name);
    }
}

/// The journey recorder is purely observational: sampling every packet
/// still reproduces the golden bits, counters included.
#[test]
fn journey_sampling_is_bit_identical_to_disabled() {
    for g in &EXPECTED {
        let cfg =
            quick_sim_config().with_telemetry(TelemetryConfig::disabled().with_journeys(1_000_000));
        let sampled = run_point(g, cfg);
        check(g, &sampled, "journeys");
        let plain = run_point(g, quick_sim_config());
        assert_eq!(plain.report.counters, sampled.report.counters, "{}: counters", g.name);
        assert!(
            sampled.report.journeys.as_ref().is_some_and(|j| j.sampled > 0),
            "{}: journeys were recorded",
            g.name
        );
    }
}
