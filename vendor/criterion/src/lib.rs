//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock measurement loop: warm up briefly, then time a fixed
//! batch and report mean time per iteration. No statistics, plots, or
//! baselines; good enough to spot order-of-magnitude regressions and,
//! above all, to keep the bench targets compiling offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, which also sizes the measurement batch.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~50 ms of measurement, 3..=1000 iterations.
        let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(3, 1_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.iters = iters;
        self.total = t1.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            eprintln!("bench {name:<40} (no measurement)");
        } else {
            let per = self.total / self.iters as u32;
            eprintln!("bench {name:<40} {per:>12.2?}/iter ({} iters)", self.iters);
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; the stub's batch
    /// sizing is automatic).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 4, "warm-up plus at least 3 measured iterations");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
