//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, ranges and tuples as strategies, [`any`],
//! [`collection::vec`], `Just`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike upstream there is no shrinking: a failing case panics with
//! the values' debug form, which is enough to reproduce because the
//! case stream is **deterministic** — seeded from the test name, so a
//! failure always recurs at the same case index.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! Uniform "any value" generation for primitive types.

    use crate::test_runner::TestRng;

    /// Types with a canonical uniform generator.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as the size parameter of [`vec`].
    pub trait SizeRange: Clone {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy yielding `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Each `fn name(binding in strategy, ...) { body }` item becomes a
/// `#[test]` that runs the body over `ProptestConfig::cases` random
/// cases, with `prop_assert!` failures reported alongside the case's
/// input values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($bind:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $bind =
                    $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(64).max(1024) {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {accepted}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
