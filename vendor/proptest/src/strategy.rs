//! Value-generation strategies.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API parity with upstream).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy for a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

trait StrategyObject<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

/// Strategy drawing any value of `A` uniformly.
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(core::marker::PhantomData<A>);

/// Generates arbitrary values of `A`: `any::<u32>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % width) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(width);
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let u = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&u));
            let f = (0.5f64..2.0).new_value(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i64..5).new_value(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1usize..4)
            .prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)).prop_map(|(n, v)| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_name("sizes");
        let s = collection::vec(any::<bool>(), 2..5);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
