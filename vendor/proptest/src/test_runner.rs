//! Test-harness plumbing: configuration, case errors, and the
//! deterministic case RNG.

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs did not meet a `prop_assume!` precondition.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A precondition rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The deterministic case RNG (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every test has its own reproducible
    /// stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn config_constructors() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert!(ProptestConfig::default().cases > 0);
    }
}
