//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is a SplitMix64 stream — statistically solid for
//! simulation workloads and, critically, *deterministic*: the same seed
//! always produces the same sequence on every platform and thread
//! count, which the experiment runner's reproducibility guarantees
//! build on. It intentionally does not match upstream `rand`'s SmallRng
//! output; nothing in this repository depends on upstream bit streams.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u128) - (start as u128) + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as u128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f: $t = Standard::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension methods over any [`RngCore`] — the user-facing sampling
/// API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        let f: f64 = self.gen();
        f < p
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that nearby seeds diverge immediately.
            let mut rng = SmallRng { state: seed ^ 0x6A09_E667_F3BC_C909 };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let x = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }
}
