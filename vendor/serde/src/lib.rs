//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a value-tree serialization framework under serde's names:
//! [`Serialize`] lowers a type to a [`Value`], [`Deserialize`] lifts it
//! back, and the companion `serde_derive` proc-macro derives both for
//! plain structs, tuple structs and C-like enums — the only shapes this
//! repository serializes. `serde_json` (also vendored) renders a
//! [`Value`] as JSON text and parses it back.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// An in-memory data tree: the intermediate representation between
/// Rust types and any text format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so output is stable.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up an object field, yielding `Null` when absent (the
    /// derive layer maps `Null` onto `Option::None`).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Ok(*f as u64)
            }
            other => Err(Error::msg(format!("expected unsigned integer, got {other:?}"))),
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(n) => Ok(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
            Value::F64(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::msg(format!("expected integer, got {other:?}"))),
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

/// Lowers a type to a [`Value`].
pub trait Serialize {
    /// Produces the value tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Lifts a type back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> { Ok(v.as_f64()? as $t) }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(Deserialize::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if items.len() != LEN {
                    return Err(Error::msg(format!(
                        "expected {LEN}-tuple, got {} items", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys: JSON objects key on strings, so keys must round-trip
/// through text.
pub trait MapKey: Ord + Sized {
    /// Renders the key.
    fn key_to_string(&self) -> String;
    /// Parses the key back.
    fn key_from_str(s: &str) -> Result<Self, Error>;
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn key_to_string(&self) -> String { self.to_string() }
            fn key_from_str(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("bad map key {s:?}")))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn key_to_string(&self) -> String {
        self.clone()
    }
    fn key_from_str(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.key_to_string(), v.to_value())).collect())
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()?.iter().map(|(k, v)| Ok((K::key_from_str(k)?, V::from_value(v)?))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let t = ("x".to_string(), vec![1.0f64, 2.0]);
        let back: (String, Vec<f64>) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);

        let mut m = BTreeMap::new();
        m.insert(10u64, 3u64);
        assert_eq!(BTreeMap::<u64, u64>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(3)).unwrap(), Some(3));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field("a"), &Value::U64(1));
        assert_eq!(obj.field("b"), &Value::Null);
    }
}
