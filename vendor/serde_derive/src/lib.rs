//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the vendored value-tree `serde` by hand-parsing the item's token
//! stream (no `syn`/`quote` available offline). Supported shapes — the
//! only ones this workspace uses:
//!
//! - structs with named fields → JSON object keyed by field name;
//! - tuple structs: one field → transparent newtype, several → array;
//! - C-like enums (unit variants only) → variant-name string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the parser extracted from the item definition.
enum Shape {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Named { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{}])\n}}\n}}",
                pairs.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n}}\n}}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(::std::vec![{}])\n}}\n}}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\"")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Str(::std::string::String::from(match self {{ {} }}))\n}}\n}}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\"))?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n}}\n}}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let items = v.as_array()?;\n\
                 if items.len() != {arity} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 \"wrong tuple-struct arity\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))\n}}\n}}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v.as_str()? {{\n{}\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

/// Parses a struct/enum definition into a [`Shape`].
fn parse_item(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (type {name})");
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit { name },
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum { name, variants: parse_unit_variants(g.stream()) }
            }
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: unsupported item kind {other}"),
    }
}

/// Skips leading attributes (`#[...]`, including doc comments) and a
/// visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive stub: malformed attribute {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected ':', got {other:?}"),
        }
        // Consume the type up to a top-level comma. Generic angle
        // brackets never nest a bare comma at depth 0 because `<`/`>`
        // are tracked below.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        arity += 1;
    }
    arity
}

/// Variant names of a C-like enum body; payload variants are rejected.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => variants.push(i.to_string()),
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive stub: enum variants with payloads are not supported \
                 (variant {})",
                variants.last().unwrap()
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Discriminant: consume the expression up to the comma.
                for t in tokens.by_ref() {
                    if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            other => panic!("serde_derive stub: unexpected token {other:?}"),
        }
    }
    variants
}
