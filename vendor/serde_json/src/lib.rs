//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree as JSON text and parses
//! JSON text back into it. Covers the surface this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`].

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A JSON error (serialization or parse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display; force a decimal
                // point so the number parses back as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Inf; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), items.len(), indent, depth, ('[', ']'), write_value)
        }
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("numeric bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::msg(format!("bad number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full char from the
                    // original source slice.
                    let s = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::msg(format!("expected ',' or ']', found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => return Err(Error::msg(format!("expected ',' or '}}', found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn float_exact_roundtrip() {
        for f in [0.1, 1.0 / 3.0, 123456.789e-3, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo ∆ world".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
